"""Merging shard records back into one cycle-exact span tree.

The plan's recording pass captured the *exact* span skeleton of the
monolithic run — structure, labels and entry counts, but zero cycles
(pure Python books none).  Each shard record carries per-span-path
cycle/instruction sums.  The merge grafts those sums onto the
skeleton, so the result is structurally identical to the monolithic
profile tree with every ``self_cycles`` rebuilt from shard
contributions.  ``tests/shard/`` asserts the graft is *exact* on toy
and mini parameters: same nodes, same counts, same per-node cycles.

Checkpoint files are JSONL: a ``plan`` header line followed by one
``shard`` record per completed shard (append-only, flushed per record,
so an interrupted run resumes from whatever reached disk).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import ShardDivergenceError, ShardError
from repro.shard.plan import OP_KINDS, ShardPlan
from repro.shard.scheduler import ShardRunStats
from repro.telemetry.spans import SpanNode
from repro.telemetry.export import span_from_dict


def read_checkpoint(path: str, plan: ShardPlan | None = None) -> dict:
    """Load ``{shard_index: record}`` from a JSONL checkpoint file.

    When *plan* is given, every record's digest and shard seed must
    match it — a checkpoint written by a different plan (other seed,
    other parameters, other code) is refused rather than merged into
    nonsense.  Duplicate records for one shard keep the first
    (re-executed shards are deterministic, so any copy is as good).
    """
    records: dict[int, dict] = {}
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError as exc:
        raise ShardError(
            f"cannot read checkpoint {path!r}: {exc}") from exc
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            raise ShardError(
                f"checkpoint {path!r} line {number} is not valid "
                f"JSON: {exc}") from exc
        kind = record.get("type")
        if kind == "plan":
            if plan is not None and \
                    record.get("digest") != plan.stream_digest:
                raise ShardError(
                    f"checkpoint {path!r} belongs to a different plan "
                    f"(digest {str(record.get('digest'))[:16]}..., "
                    f"expected {plan.stream_digest[:16]}...)")
            continue
        if kind != "shard":
            continue
        index = int(record["shard"])
        if plan is not None:
            if record.get("digest") != plan.stream_digest:
                raise ShardError(
                    f"checkpoint {path!r} line {number}: shard "
                    f"{index} was produced by a different plan")
            if index >= plan.shards or \
                    record.get("seed") != plan.shard_seeds[index]:
                raise ShardError(
                    f"checkpoint {path!r} line {number}: shard "
                    f"{index} seed does not match the plan")
        records.setdefault(index, record)
    return records


@dataclass
class MergedRun:
    """The merged result of a sharded group action."""

    plan: ShardPlan
    root: SpanNode
    cycles: int
    instructions: int
    ops: dict[str, int]
    engine: str
    completed: tuple[int, ...]
    partial: bool
    workers: int = 0
    stats: ShardRunStats | None = None

    @property
    def coefficient(self) -> int:
        return self.plan.coefficient

    @property
    def action_node(self) -> SpanNode:
        node = self.root.find("group_action")
        if node is None:
            raise ShardError("merged tree has no group_action span")
        return node

    def bench_record(self) -> dict:
        """One ``sharded_action`` BENCH trajectory record."""
        stats = self.stats or ShardRunStats(workers=self.workers)
        return {
            "mode": "sharded_action",
            "params": self.plan.params_name,
            "variant": self.plan.variant,
            "shards": self.plan.shards,
            "workers": stats.workers,
            "engine": self.engine,
            "wall_s": stats.exec_wall_s,
            "plan_wall_s": self.plan.plan_wall_s,
            "simulated_cycles": self.cycles,
            "simulated_instructions": self.instructions,
            "steals": stats.steals,
            "requeues": stats.requeues,
            "worker_failures": stats.worker_failures,
            "divergences": 0,  # merge refuses divergent records
            "shards_completed": stats.shards_completed
            or len(self.completed),
        }


def merge_records(
    plan: ShardPlan,
    records: dict,
    *,
    stats: ShardRunStats | None = None,
    engine: str = "jit",
    partial: bool = False,
) -> MergedRun:
    """Graft shard records onto the plan skeleton.

    A full merge (the default) demands every shard and re-checks the
    summed per-kind op counts against the plan's; ``partial=True``
    permits a subset (bounded CSIDH-512 smoke slices, progress
    inspection of an interrupted run) and skips the completeness
    checks.  Any reported divergence refuses the merge outright with
    :class:`~repro.errors.ShardDivergenceError`.
    """
    missing = [index for index in range(plan.shards)
               if index not in records]
    if missing and not partial:
        preview = ", ".join(str(index) for index in missing[:8])
        if len(missing) > 8:
            preview += ", ..."
        raise ShardError(
            f"cannot merge: {len(missing)} of {plan.shards} shards "
            f"missing ({preview}); re-run or resume from the "
            f"checkpoint, or pass partial=True for a partial view")
    divergences = sum(
        int(record.get("divergences", 0)) for record in records.values())
    if divergences:
        raise ShardDivergenceError(
            f"{divergences} simulated operation(s) diverged from the "
            f"pure-Python reference across {len(records)} shard "
            f"record(s); the sharded run is not trustworthy")

    root = span_from_dict(plan.skeleton)
    for node in root.walk():
        node.self_cycles = 0  # skeleton is cycle-free by construction

    cycles = 0
    instructions = 0
    ops = dict.fromkeys(OP_KINDS, 0)
    for index in sorted(records):
        record = records[index]
        for span_key, (span_cycles, span_instructions) in \
                record["spans"].items():
            span_id = int(span_key)
            if span_id >= len(plan.span_paths):
                raise ShardError(
                    f"shard {index} references span id {span_id} "
                    f"beyond the plan's path table")
            node = root
            for name, labels in plan.span_paths[span_id]:
                child = node.children.get((name, tuple(labels)))
                if child is None:
                    raise ShardError(
                        f"shard {index} references span path "
                        f"{name!r} absent from the plan skeleton")
                node = child
            node.self_cycles += int(span_cycles)
            cycles += int(span_cycles)
            instructions += int(span_instructions)
        for kind, count in record.get("ops", {}).items():
            ops[kind] = ops.get(kind, 0) + int(count)

    if not partial and not missing and ops != dict(plan.op_counts):
        raise ShardError(
            f"merged op counts {ops} disagree with the plan's "
            f"{dict(plan.op_counts)}; shard records are inconsistent")

    return MergedRun(
        plan=plan,
        root=root,
        cycles=cycles,
        instructions=instructions,
        ops=ops,
        engine=engine,
        completed=tuple(sorted(records)),
        partial=partial or bool(missing),
        workers=stats.workers if stats else 0,
        stats=stats,
    )


def run_sharded_action(
    plan: ShardPlan,
    *,
    workers: int | None = None,
    engine: str = "jit",
    checkpoint_path: str | None = None,
    resume: bool = False,
    shard_ids=None,
    fail_injection: dict | None = None,
    queue_depth: int | None = None,
    max_requeues: int | None = None,
) -> MergedRun:
    """Plan-to-merged-run convenience: execute then merge.

    With ``resume=True`` and an existing checkpoint, finished shards
    are loaded (and validated against the plan) instead of re-run.
    Passing *shard_ids* produces a partial merge of just that slice.
    """
    from repro.shard.scheduler import (
        DEFAULT_MAX_REQUEUES,
        DEFAULT_QUEUE_DEPTH,
        ShardExecutor,
        ShardRunStats,
    )

    completed: dict[int, dict] = {}
    if resume:
        if checkpoint_path is None:
            raise ShardError("resume requires a checkpoint path")
        import os

        if os.path.exists(checkpoint_path):
            completed = read_checkpoint(checkpoint_path, plan)
    executor = ShardExecutor(
        plan,
        workers=workers,
        engine=engine,
        queue_depth=DEFAULT_QUEUE_DEPTH
        if queue_depth is None else queue_depth,
        max_requeues=DEFAULT_MAX_REQUEUES
        if max_requeues is None else max_requeues,
        fail_injection=fail_injection,
    )
    stats = ShardRunStats()
    records = executor.run(
        checkpoint_path=checkpoint_path,
        shard_ids=shard_ids,
        completed=completed,
        stats=stats,
    )
    return merge_records(
        plan, records, stats=stats, engine=engine,
        partial=shard_ids is not None)


def span_cycle_mismatches(a: SpanNode, b: SpanNode,
                          path: str = "") -> list[str]:
    """Structural diff of two span trees, ignoring wall-clock fields.

    ``SpanNode.__eq__`` compares ``wall_s``/``start_epoch`` too, which
    can never match across process boundaries; tests use this
    comparator to assert the *deterministic* fields — name, labels,
    entry count, per-node cycles and child structure — are identical.
    """
    here = path + "/" + a.label
    mismatches = []
    if a.name != b.name or a.labels != b.labels:
        mismatches.append(f"{here}: identity {b.label!r}")
    if a.count != b.count:
        mismatches.append(
            f"{here}: count {a.count} != {b.count}")
    if a.self_cycles != b.self_cycles:
        mismatches.append(
            f"{here}: self_cycles {a.self_cycles} != {b.self_cycles}")
    a_keys = list(a.children)
    b_keys = list(b.children)
    if a_keys != b_keys:
        mismatches.append(
            f"{here}: children {a_keys} != {b_keys}")
        return mismatches
    for key in a_keys:
        mismatches.extend(span_cycle_mismatches(
            a.children[key], b.children[key], here))
    return mismatches
