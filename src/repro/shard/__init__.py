"""Sharded multi-process execution of group actions and campaigns.

The subsystem that makes the full CSIDH-512 dynamic run feasible:
record the action's primitive-op stream cheaply in pure Python, cut it
into shards, simulate the shards on worker processes in parallel, and
merge per-shard cycle sums back onto the recorded span skeleton —
bit-for-bit and cycle-exact against the monolithic run (see
``docs/SHARDING.md`` for the model and the determinism argument).

Public surface::

    build_plan / save_plan / load_plan      # repro.shard.plan
    ShardExecutor / ShardRunStats           # repro.shard.scheduler
    run_sharded_action / merge_records      # repro.shard.merge
    read_checkpoint / span_cycle_mismatches # repro.shard.merge
    build_campaign_plan / run_sharded_campaign  # repro.shard.campaign
"""

from repro.shard.campaign import (
    CampaignShardPlan,
    CampaignShardRunner,
    build_campaign_plan,
    merge_campaign_records,
    run_sharded_campaign,
)
from repro.shard.merge import (
    MergedRun,
    merge_records,
    read_checkpoint,
    run_sharded_action,
    span_cycle_mismatches,
)
from repro.shard.plan import (
    ShardPlan,
    build_plan,
    compute_boundaries,
    load_plan,
    plan_from_dict,
    record_action_stream,
    regenerate_stream,
    save_plan,
)
from repro.shard.scheduler import ShardExecutor, ShardRunStats
from repro.shard.worker import KILLED_EXIT, ShardRunner

__all__ = [
    "CampaignShardPlan",
    "CampaignShardRunner",
    "KILLED_EXIT",
    "MergedRun",
    "ShardExecutor",
    "ShardPlan",
    "ShardRunStats",
    "ShardRunner",
    "build_campaign_plan",
    "build_plan",
    "compute_boundaries",
    "load_plan",
    "merge_campaign_records",
    "merge_records",
    "plan_from_dict",
    "read_checkpoint",
    "record_action_stream",
    "regenerate_stream",
    "run_sharded_action",
    "run_sharded_campaign",
    "save_plan",
    "span_cycle_mismatches",
]
