"""Shard worker: execute one contiguous op range on the simulator.

A worker process owns exactly one :class:`ShardRunner` (or its fault
campaign sibling in :mod:`repro.shard.campaign`): a regenerated op
stream, a scoped :class:`~repro.field.simulated.SimulatedFieldContext`
and a pure-Python :class:`~repro.field.fp.FieldContext` reference.  For
every op in its assigned range it runs the simulated kernels, checks
the value against the reference, and buckets the cycle/instruction
deltas under the op's recorded span path — the per-shard half of the
cycle-exact merge (:mod:`repro.shard.merge`).

``worker_main`` is the process entry point driven by the scheduler's
queues; it is deliberately dumb (no shared state, no scheduling
decisions) so a worker crash loses at most the shards it had in
flight.
"""

from __future__ import annotations

import os
import time

from repro import telemetry
from repro.errors import ReproError
from repro.field.fp import FieldContext
from repro.field.simulated import SimulatedFieldContext
from repro.shard.plan import (
    OP_ADD,
    OP_MUL,
    OP_SQR,
    OP_SUB,
    OP_KINDS,
    OpStream,
    ShardPlan,
    regenerate_stream,
)

#: Exit status a worker uses when told to die (fault-injection tests
#: kill workers with it so the scheduler's recovery path is exercised
#: by a *real* process death, not a simulated one).
KILLED_EXIT = 17


class ShardRunner:
    """Executes action shards against a regenerated op stream."""

    def __init__(
        self,
        plan: ShardPlan,
        *,
        engine: str = "jit",
        scope: str = "",
        stream: OpStream | None = None,
    ) -> None:
        self.plan = plan
        self.engine = engine
        if stream is None:
            stream = regenerate_stream(plan)
        self.stream = stream
        self.field = SimulatedFieldContext(
            plan.p, variant=plan.variant, engine=engine, scope=scope)
        self.reference = FieldContext(plan.p)

    def execute(self, index: int) -> dict:
        """Run shard *index* and return its checkpointable record."""
        start, end = self.plan.boundaries[index]
        field = self.field
        reference = self.reference
        stream = self.stream
        spans: dict[int, list[int]] = {}
        ops = dict.fromkeys(OP_KINDS, 0)
        divergences = 0
        began = time.perf_counter()
        cycles0 = field.simulated_cycles
        instructions0 = field.simulated_instructions
        for position in range(start, end):
            kind, a, b, span_id = stream.op(position)
            before_cycles = field.simulated_cycles
            before_instructions = field.simulated_instructions
            if kind == OP_MUL:
                got = field.mul(a, b)
                want = reference.mul(a, b)
            elif kind == OP_SQR:
                got = field.sqr(a)
                want = reference.sqr(a)
            elif kind == OP_ADD:
                got = field.add(a, b)
                want = reference.add(a, b)
            else:
                got = field.sub(a, b)
                want = reference.sub(a, b)
            if got != want:
                divergences += 1
            bucket = spans.get(span_id)
            if bucket is None:
                bucket = spans[span_id] = [0, 0]
            bucket[0] += field.simulated_cycles - before_cycles
            bucket[1] += (field.simulated_instructions
                          - before_instructions)
            ops[OP_KINDS[kind]] += 1
        return {
            "type": "shard",
            "shard": index,
            "seed": self.plan.shard_seeds[index],
            "digest": self.plan.stream_digest,
            "start": start,
            "end": end,
            "cycles": field.simulated_cycles - cycles0,
            "instructions": field.simulated_instructions - instructions0,
            "spans": {str(span_id): counts
                      for span_id, counts in spans.items()},
            "ops": ops,
            "divergences": divergences,
            "engine": self.engine,
            "wall_s": time.perf_counter() - began,
        }


def build_runner(spec: dict, engine: str):
    """Instantiate the runner a worker spec describes.

    ``spec["kind"]`` selects between the action runner above and the
    fault campaign runner; the campaign module is imported lazily so
    this module keeps no dependency on the fault subsystem.
    """
    if spec["kind"] == "campaign":
        from repro.shard.campaign import (
            CampaignShardRunner,
            campaign_plan_from_dict,
        )

        return CampaignShardRunner(
            campaign_plan_from_dict(spec["plan"]), engine=engine)
    from repro.shard.plan import plan_from_dict

    return ShardRunner(plan_from_dict(spec["plan"]), engine=engine)


def worker_main(worker_id: int, spec: dict, engine: str,
                inbox, outbox) -> None:
    """Process entry point: build a runner, then drain the inbox.

    Messages: ``("shard", index, die)`` executes shard *index*
    (``die=True`` makes the process exit hard *instead*, for recovery
    tests); ``("stop",)`` ends the loop.  Replies on *outbox*:
    ``("ready", id)`` once initialised, then ``("done", id, record)``
    or ``("error", id, code, message)``.
    """
    try:
        telemetry.disable()
        runner = build_runner(spec, engine)
        outbox.put(("ready", worker_id))
        while True:
            message = inbox.get()
            if message[0] == "stop":
                break
            _tag, index, die = message
            if die:
                os._exit(KILLED_EXIT)
            record = runner.execute(index)
            record["worker"] = worker_id
            outbox.put(("done", worker_id, record))
    except ReproError as exc:
        outbox.put(("error", worker_id, exc.code, str(exc)))
    except BaseException as exc:  # noqa: BLE001 - report, don't vanish
        outbox.put(("error", worker_id, "shard", repr(exc)))
