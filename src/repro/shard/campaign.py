"""Sharding fault-injection campaigns across worker processes.

A fault campaign shards trivially *because of* the per-trial cold pool
in :func:`repro.fault.campaign.run_trial_range`: every trial is a pure
function of its planned site and seeded operands, so any partition of
``[0, n)`` into contiguous ranges concatenates to exactly the
monolithic trial list, and the captured fault-layer metric families
sum exactly (asserted in ``tests/shard/test_campaign_shard.py``).

The plan/worker/merge shapes mirror the group-action subsystem
(:mod:`repro.shard.plan` / :mod:`repro.shard.merge`) so one scheduler
drives both kinds of shard.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass

from repro.errors import ShardError
from repro.fault.campaign import (
    CampaignReport,
    TrialResult,
    run_trial_range,
)
from repro.fault.plan import ALL_SITES, FAULT_OPERATIONS
from repro.field.simulated import DEFAULT_RECOVERY_ATTEMPTS
from repro.shard.plan import compute_boundaries, derive_shard_seed
from repro.telemetry.export import SCHEMA_VERSION


@dataclass(frozen=True)
class CampaignShardPlan:
    """Everything a worker needs to run a contiguous trial range."""

    kind = "campaign"

    p: int
    seed: int
    n: int
    variant: str
    sites: tuple[str, ...]
    operations: tuple[str, ...]
    check_interval: int
    max_recovery_attempts: int
    boundaries: tuple[tuple[int, int], ...]
    shard_seeds: tuple[int, ...]
    stream_digest: str
    plan_wall_s: float = 0.0

    @property
    def shards(self) -> int:
        return len(self.boundaries)

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "kind": self.kind,
            "p": self.p,
            "seed": self.seed,
            "n": self.n,
            "variant": self.variant,
            "sites": list(self.sites),
            "operations": list(self.operations),
            "check_interval": self.check_interval,
            "max_recovery_attempts": self.max_recovery_attempts,
            "boundaries": [list(pair) for pair in self.boundaries],
            "shard_seeds": list(self.shard_seeds),
            "stream_digest": self.stream_digest,
            "plan_wall_s": self.plan_wall_s,
        }


def campaign_plan_from_dict(data: dict) -> CampaignShardPlan:
    try:
        return CampaignShardPlan(
            p=int(data["p"]),
            seed=int(data["seed"]),
            n=int(data["n"]),
            variant=data["variant"],
            sites=tuple(data["sites"]),
            operations=tuple(data["operations"]),
            check_interval=int(data["check_interval"]),
            max_recovery_attempts=int(data["max_recovery_attempts"]),
            boundaries=tuple(
                (int(start), int(end))
                for start, end in data["boundaries"]),
            shard_seeds=tuple(int(s) for s in data["shard_seeds"]),
            stream_digest=data["stream_digest"],
            plan_wall_s=float(data.get("plan_wall_s", 0.0)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ShardError(
            f"malformed campaign shard plan: {exc}") from exc


def build_campaign_plan(
    p: int,
    *,
    seed: int,
    n: int,
    shards: int,
    variant: str = "reduced.ise",
    sites: tuple[str, ...] = ALL_SITES,
    operations: tuple[str, ...] = FAULT_OPERATIONS,
    check_interval: int = 1,
    max_recovery_attempts: int = DEFAULT_RECOVERY_ATTEMPTS,
) -> CampaignShardPlan:
    """Cut the *n*-trial campaign into contiguous trial ranges."""
    if n < 1:
        raise ShardError(f"campaign needs at least one trial, got {n}")
    began = time.perf_counter()
    # trials have no natural change points; the raw even split is final
    boundaries = compute_boundaries(n, shards, [])
    identity = json.dumps({
        "kind": "campaign",
        "p": p,
        "seed": seed,
        "n": n,
        "variant": variant,
        "sites": list(sites),
        "operations": list(operations),
        "check_interval": check_interval,
        "max_recovery_attempts": max_recovery_attempts,
    }, sort_keys=True)
    digest = hashlib.sha256(identity.encode()).hexdigest()
    return CampaignShardPlan(
        p=p,
        seed=seed,
        n=n,
        variant=variant,
        sites=tuple(sites),
        operations=tuple(operations),
        check_interval=check_interval,
        max_recovery_attempts=max_recovery_attempts,
        boundaries=boundaries,
        shard_seeds=tuple(
            derive_shard_seed(digest, index)
            for index in range(len(boundaries))),
        stream_digest=digest,
        plan_wall_s=time.perf_counter() - began,
    )


class CampaignShardRunner:
    """Executes campaign shards (contiguous trial ranges)."""

    def __init__(self, plan: CampaignShardPlan, *,
                 engine: str | None = None) -> None:
        self.plan = plan
        # campaigns default to the context's replay tier; the
        # scheduler's generic engine knob maps onto it
        self.engine = None if engine in (None, "replay") else engine

    def execute(self, index: int) -> dict:
        start, end = self.plan.boundaries[index]
        plan = self.plan
        began = time.perf_counter()
        trials, metrics = run_trial_range(
            plan.p,
            seed=plan.seed,
            n=plan.n,
            start=start,
            end=end,
            variant=plan.variant,
            sites=plan.sites,
            operations=plan.operations,
            check_interval=plan.check_interval,
            max_recovery_attempts=plan.max_recovery_attempts,
            engine=self.engine,
        )
        return {
            "type": "shard",
            "shard": index,
            "seed": plan.shard_seeds[index],
            "digest": plan.stream_digest,
            "start": start,
            "end": end,
            "cycles": 0,
            "instructions": 0,
            "spans": {},
            "trials": [trial.to_dict() for trial in trials],
            "metrics": metrics,
            "divergences": 0,
            "engine": self.engine or "replay",
            "wall_s": time.perf_counter() - began,
        }


def merge_campaign_records(
    plan: CampaignShardPlan,
    records: dict,
    *,
    engine: str | None = None,
) -> CampaignReport:
    """Concatenate shard trial ranges into one campaign report.

    Trials are ordered by index (ranges are disjoint and contiguous,
    so concatenation in shard order reproduces plan order) and metric
    families are summed sample-by-sample across shards.
    """
    missing = [index for index in range(plan.shards)
               if index not in records]
    if missing:
        raise ShardError(
            f"cannot merge campaign: {len(missing)} of {plan.shards} "
            f"shard(s) missing; re-run or resume from the checkpoint")
    trials: list[TrialResult] = []
    merged_metrics: dict[tuple, float] = {}
    metric_names: list[str] = []
    for index in sorted(records):
        record = records[index]
        for data in record["trials"]:
            trials.append(TrialResult(
                index=int(data["index"]),
                site=data["site"],
                operation=data["operation"],
                description=data["description"],
                outcome=data["outcome"],
                detections=int(data["detections"]),
                recoveries=int(data["recoveries"]),
            ))
        for name, samples in record.get("metrics", {}).items():
            if name not in metric_names:
                metric_names.append(name)
            for sample in samples:
                key = (name, tuple(sorted(sample["labels"].items())))
                merged_metrics[key] = (
                    merged_metrics.get(key, 0) + sample["value"])
    if len(trials) != plan.n:
        raise ShardError(
            f"merged campaign has {len(trials)} trials, plan expects "
            f"{plan.n}")
    # insertion order: shards are iterated in trial order and each
    # trial fires the same increments as monolithically, so first-seen
    # order of (name, labels) reproduces the monolithic sample order
    # and the merged report is byte-identical (asserted in tests)
    metrics = {
        name: [
            {"labels": dict(labels), "value": value}
            for (sample_name, labels), value in merged_metrics.items()
            if sample_name == name
        ]
        for name in metric_names
    }
    return CampaignReport(
        seed=plan.seed,
        n=plan.n,
        modulus=plan.p,
        variant=plan.variant,
        check_interval=plan.check_interval,
        trials=tuple(trials),
        metrics=metrics,
        engine=(engine or "replay"),
    )


def run_sharded_campaign(
    p: int,
    *,
    seed: int,
    n: int,
    shards: int,
    workers: int | None = None,
    variant: str = "reduced.ise",
    sites: tuple[str, ...] = ALL_SITES,
    operations: tuple[str, ...] = FAULT_OPERATIONS,
    check_interval: int = 1,
    max_recovery_attempts: int = DEFAULT_RECOVERY_ATTEMPTS,
    engine: str | None = None,
    checkpoint_path: str | None = None,
    resume: bool = False,
    stats=None,
) -> CampaignReport:
    """Sharded :func:`~repro.fault.campaign.run_campaign` equivalent."""
    from repro.shard.merge import read_checkpoint
    from repro.shard.scheduler import ShardExecutor, ShardRunStats

    plan = build_campaign_plan(
        p,
        seed=seed,
        n=n,
        shards=shards,
        variant=variant,
        sites=sites,
        operations=operations,
        check_interval=check_interval,
        max_recovery_attempts=max_recovery_attempts,
    )
    completed: dict[int, dict] = {}
    if resume and checkpoint_path is not None:
        import os

        if os.path.exists(checkpoint_path):
            completed = read_checkpoint(checkpoint_path, plan)
    executor = ShardExecutor(
        plan, workers=workers,
        engine=engine if engine is not None else "replay")
    stats = stats if stats is not None else ShardRunStats()
    records = executor.run(
        checkpoint_path=checkpoint_path,
        completed=completed,
        stats=stats,
    )
    return merge_campaign_records(plan, records, engine=engine)
