"""Shard plans: decompose one group action into independent op ranges.

The group action is inherently sequential — every isogeny consumes the
curve the previous one produced — but its *cost* is not: all of the
simulated cycles are spent inside the four primitive field operations
(``mul``/``sqr``/``add``/``sub``), each a pure function of its reduced
operands.  The planner exploits that split:

1. **Record** (fast): run the group action once on a pure-Python
   :class:`RecordingFieldContext` under telemetry capture.  Every
   derived operation (inversion, Legendre, ladder steps) decomposes
   into the counted primitives in :class:`~repro.field.fp.FieldContext`
   itself, so the recording is the exact primitive-op stream the
   simulated run would execute — operands, order and all — tagged with
   the open span path at each op.  A CSIDH-512 action is ~1 M
   primitive ops and runs in about a second of pure Python; the ~5·10⁸
   simulated instructions it *implies* are what gets sharded.
2. **Shard**: cut the stream into contiguous ranges, snapping cut
   points to span-path changes (isogeny/kernel boundaries) so shards
   align with protocol phases where possible.
3. **Execute** (parallel, elsewhere): each worker re-records the
   stream from the seed (verifying the digest), simulates only its
   range, checks every value against the pure-Python expectation, and
   sums cycles per span path.
4. **Merge**: graft the per-span cycle sums onto the plan's captured
   span skeleton.  Because each op's kernel runs are a pure function
   of its operands and the engines are cycle-identical, the merged
   tree is bit-for-bit the monolithic profile's tree
   (``tests/shard/`` asserts this on toy and mini).

A plan file holds everything *except* the op stream (which every
worker regenerates locally from the seed — cheaper than shipping
hundreds of MB through queues): parameters, seed, exponents, expected
coefficient, shard boundaries, per-shard seeds, the span-path table,
the span skeleton and the stream digest.  See ``docs/SHARDING.md``.
"""

from __future__ import annotations

import hashlib
import json
import random
import time
from array import array
from bisect import bisect_left
from dataclasses import dataclass

from repro import telemetry
from repro.csidh.group_action import ActionStats, group_action
from repro.csidh.parameters import (
    CsidhParameters,
    csidh_512,
    csidh_mini,
    csidh_toy,
)
from repro.errors import ShardError
from repro.field.fp import FieldContext
from repro.telemetry.export import SCHEMA_VERSION, span_to_dict

#: Parameter-set factories by CLI key (mirrors ``repro --params``).
PARAM_FACTORIES = {
    "csidh-512": csidh_512,
    "mini": csidh_mini,
    "toy": csidh_toy,
}

#: Primitive-op kinds in stream encoding order.
OP_KINDS = ("mul", "sqr", "add", "sub")
OP_MUL, OP_SQR, OP_ADD, OP_SUB = range(4)


class OpStream:
    """Compact append-only log of primitive field operations.

    Operands are packed little-endian at the modulus' byte width and
    span paths are interned to small ids, so a CSIDH-512 recording
    (~1 M ops) stays around 130 MB instead of the multi-hundred-MB a
    list of tuples would cost.
    """

    def __init__(self, p: int) -> None:
        self.p = p
        self._width = (p.bit_length() + 7) // 8
        self._kinds = bytearray()
        self._span_ids = array("i")
        self._operands = bytearray()
        self.paths: list[tuple] = []
        self._path_ids: dict[tuple, int] = {}

    def __len__(self) -> int:
        return len(self._kinds)

    def append(self, kind: int, a: int, b: int, path: tuple) -> None:
        path_id = self._path_ids.get(path)
        if path_id is None:
            path_id = self._path_ids[path] = len(self.paths)
            self.paths.append(path)
        self._kinds.append(kind)
        self._span_ids.append(path_id)
        width = self._width
        self._operands += a.to_bytes(width, "little")
        self._operands += b.to_bytes(width, "little")

    def op(self, index: int) -> tuple[int, int, int, int]:
        """``(kind, a, b, span_id)`` of op *index*."""
        width = self._width
        offset = 2 * width * index
        a = int.from_bytes(
            self._operands[offset:offset + width], "little")
        b = int.from_bytes(
            self._operands[offset + width:offset + 2 * width], "little")
        return self._kinds[index], a, b, self._span_ids[index]

    def op_counts(self) -> dict[str, int]:
        counts = dict.fromkeys(OP_KINDS, 0)
        for kind in self._kinds:
            counts[OP_KINDS[kind]] += 1
        return counts

    def change_points(self) -> list[int]:
        """Indices where the span path changes (natural cut points)."""
        span_ids = self._span_ids
        return [i for i in range(1, len(span_ids))
                if span_ids[i] != span_ids[i - 1]]

    def digest(self) -> str:
        """SHA-256 over kinds, span ids, operands and the path table.

        Workers regenerate the stream from the plan seed and refuse to
        execute when their digest disagrees — the guard that makes
        "every process re-derives its own input" safe.
        """
        h = hashlib.sha256()
        h.update(str(self.p).encode())
        h.update(bytes(self._kinds))
        h.update(self._span_ids.tobytes())
        h.update(bytes(self._operands))
        h.update(json.dumps(
            [_path_to_json(path) for path in self.paths]).encode())
        return h.hexdigest()


class RecordingFieldContext(FieldContext):
    """Pure-Python field context that logs every counted primitive.

    Operands are normalised into ``[0, p)`` *before* recording — the
    same normalisation :class:`~repro.field.simulated
    .SimulatedFieldContext` applies before its kernel runs — so the
    recorded stream is exactly what a simulated run executes.
    """

    def __init__(self, p: int, stream: OpStream) -> None:
        super().__init__(p)
        self._stream = stream

    def mul(self, a: int, b: int) -> int:
        a %= self.p
        b %= self.p
        self._stream.append(OP_MUL, a, b, telemetry.current_span_path())
        return super().mul(a, b)

    def sqr(self, a: int) -> int:
        a %= self.p
        self._stream.append(OP_SQR, a, 0, telemetry.current_span_path())
        return super().sqr(a)

    def add(self, a: int, b: int) -> int:
        a %= self.p
        b %= self.p
        self._stream.append(OP_ADD, a, b, telemetry.current_span_path())
        return super().add(a, b)

    def sub(self, a: int, b: int) -> int:
        a %= self.p
        b %= self.p
        self._stream.append(OP_SUB, a, b, telemetry.current_span_path())
        return super().sub(a, b)


def record_action_stream(
    params: CsidhParameters,
    *,
    seed: int,
    exponents: tuple[int, ...] | None = None,
):
    """One pure-Python recording pass of the profiled group action.

    Mirrors :func:`repro.telemetry.profile.profile_group_action`'s rng
    discipline exactly (same seed → same exponents → same sample
    points), so the recorded stream is op-for-op the stream the
    monolithic profile executes.  Returns ``(stream, coefficient,
    exponents, stats, capture_root)``.
    """
    rng = random.Random(seed)
    if exponents is None:
        exponents = params.sample_private_key(rng)
    stream = OpStream(params.p)
    field = RecordingFieldContext(params.p, stream)
    stats = ActionStats()
    with telemetry.capture() as cap:
        coefficient = group_action(
            params, field, 0, exponents, rng, stats=stats)
    return stream, coefficient, tuple(exponents), stats, cap.root


def compute_boundaries(
    n_ops: int,
    shards: int,
    change_points: list[int],
) -> tuple[tuple[int, int], ...]:
    """Cut ``[0, n_ops)`` into *shards* contiguous non-empty ranges.

    Each ideal cut (an even split) snaps to the nearest span-path
    change point that keeps the cut sequence strictly increasing, so
    shards align with isogeny/phase boundaries; when shards outnumber
    the change points the raw even split is kept.
    """
    if n_ops < 1:
        raise ShardError("cannot shard an empty op stream")
    if shards < 1:
        raise ShardError(f"need at least one shard, got {shards}")
    shards = min(shards, n_ops)
    cuts = [0]
    for j in range(1, shards):
        ideal = round(j * n_ops / shards)
        low = cuts[-1] + 1
        high = n_ops - (shards - j)  # room for remaining shards
        best = min(max(ideal, low), high)
        position = bisect_left(change_points, best)
        snapped = None
        for candidate_index in (position - 1, position):
            if 0 <= candidate_index < len(change_points):
                candidate = change_points[candidate_index]
                if low <= candidate <= high and (
                        snapped is None
                        or abs(candidate - best) < abs(snapped - best)):
                    snapped = candidate
        cuts.append(best if snapped is None else snapped)
    cuts.append(n_ops)
    return tuple(zip(cuts[:-1], cuts[1:]))


def derive_shard_seed(stream_digest: str, index: int) -> int:
    """Deterministic per-shard seed: run seed → digest → shard seed.

    Stamped into every checkpoint record; the merge refuses records
    whose seed disagrees with the plan's, so checkpoints from
    different runs can never be silently mixed.
    """
    material = f"{stream_digest}:{index}".encode()
    return int.from_bytes(
        hashlib.sha256(material).digest()[:8], "big")


@dataclass(frozen=True)
class ShardPlan:
    """Everything a worker or merge needs about one sharded action."""

    kind = "action"

    params_key: str
    params_name: str
    p: int
    seed: int
    variant: str
    exponents: tuple[int, ...]
    coefficient: int            # expected group-action output
    n_ops: int
    op_counts: dict[str, int]
    boundaries: tuple[tuple[int, int], ...]
    shard_seeds: tuple[int, ...]
    stream_digest: str
    span_paths: tuple           # path table: span_id -> (name, labels) frames
    skeleton: dict              # span_to_dict of the recording capture root
    isogenies: int
    rounds: int
    plan_wall_s: float

    @property
    def shards(self) -> int:
        return len(self.boundaries)

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "kind": self.kind,
            "params": self.params_key,
            "params_name": self.params_name,
            "p": self.p,
            "seed": self.seed,
            "variant": self.variant,
            "exponents": list(self.exponents),
            "coefficient": self.coefficient,
            "n_ops": self.n_ops,
            "op_counts": dict(self.op_counts),
            "boundaries": [list(pair) for pair in self.boundaries],
            "shard_seeds": list(self.shard_seeds),
            "stream_digest": self.stream_digest,
            "span_paths": [_path_to_json(path)
                           for path in self.span_paths],
            "skeleton": self.skeleton,
            "isogenies": self.isogenies,
            "rounds": self.rounds,
            "plan_wall_s": self.plan_wall_s,
        }


def _path_to_json(path: tuple) -> list:
    return [[name, [list(pair) for pair in labels]]
            for name, labels in path]


def _path_from_json(data: list) -> tuple:
    return tuple(
        (name, tuple(sorted((str(k), str(v)) for k, v in labels)))
        for name, labels in data
    )


def plan_from_dict(data: dict) -> ShardPlan:
    try:
        return ShardPlan(
            params_key=data["params"],
            params_name=data["params_name"],
            p=int(data["p"]),
            seed=int(data["seed"]),
            variant=data["variant"],
            exponents=tuple(data["exponents"]),
            coefficient=int(data["coefficient"]),
            n_ops=int(data["n_ops"]),
            op_counts=dict(data["op_counts"]),
            boundaries=tuple(
                (int(start), int(end))
                for start, end in data["boundaries"]),
            shard_seeds=tuple(int(s) for s in data["shard_seeds"]),
            stream_digest=data["stream_digest"],
            span_paths=tuple(_path_from_json(path)
                             for path in data["span_paths"]),
            skeleton=data["skeleton"],
            isogenies=int(data["isogenies"]),
            rounds=int(data["rounds"]),
            plan_wall_s=float(data["plan_wall_s"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ShardError(f"malformed shard plan: {exc}") from exc


def build_plan(
    params_key: str,
    *,
    shards: int,
    seed: int = 3,
    variant: str = "reduced.ise",
) -> tuple[ShardPlan, OpStream]:
    """Record the action for *params_key* and cut it into *shards*.

    Returns the plan together with the recorded stream so in-process
    callers (tests, benchmarks, the inline executor) can reuse it
    without a second recording pass; worker processes regenerate the
    stream from the plan alone.
    """
    factory = PARAM_FACTORIES.get(params_key)
    if factory is None:
        raise ShardError(
            f"unknown parameter set {params_key!r}; choose from "
            + ", ".join(sorted(PARAM_FACTORIES)))
    if shards < 1:
        raise ShardError(f"--shards must be at least 1 (got {shards})")
    params = factory()
    start = time.perf_counter()
    stream, coefficient, exponents, stats, root = \
        record_action_stream(params, seed=seed)
    boundaries = compute_boundaries(
        len(stream), shards, stream.change_points())
    digest = stream.digest()
    plan = ShardPlan(
        params_key=params_key,
        params_name=params.name,
        p=params.p,
        seed=seed,
        variant=variant,
        exponents=exponents,
        coefficient=coefficient,
        n_ops=len(stream),
        op_counts=stream.op_counts(),
        boundaries=boundaries,
        shard_seeds=tuple(
            derive_shard_seed(digest, index)
            for index in range(len(boundaries))),
        stream_digest=digest,
        span_paths=tuple(stream.paths),
        skeleton=span_to_dict(root),
        isogenies=stats.isogenies,
        rounds=stats.rounds,
        plan_wall_s=time.perf_counter() - start,
    )
    return plan, stream


def regenerate_stream(plan: ShardPlan) -> OpStream:
    """Re-record the plan's op stream locally and verify its digest."""
    factory = PARAM_FACTORIES.get(plan.params_key)
    if factory is None:
        raise ShardError(
            f"plan names unknown parameter set {plan.params_key!r}")
    params = factory()
    stream, coefficient, _exponents, _stats, _root = \
        record_action_stream(params, seed=plan.seed)
    digest = stream.digest()
    if digest != plan.stream_digest:
        raise ShardError(
            f"regenerated op stream digest {digest[:16]}... does not "
            f"match the plan's {plan.stream_digest[:16]}...; the plan "
            f"was built against different code or parameters")
    if coefficient != plan.coefficient:
        raise ShardError(
            f"regenerated group action produced coefficient "
            f"{coefficient}, plan expects {plan.coefficient}")
    return stream


def save_plan(path: str, plan: ShardPlan) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(plan.to_dict(), handle, indent=2)
        handle.write("\n")


def load_plan(path: str) -> ShardPlan:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as exc:
        raise ShardError(
            f"cannot read shard plan {path!r}: {exc}") from exc
    except ValueError as exc:
        raise ShardError(
            f"shard plan {path!r} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict) or data.get("kind") != "action":
        raise ShardError(
            f"{path!r} is not a shard plan file (missing kind)")
    return plan_from_dict(data)
