"""Assembly-source builder used by the kernel generators.

Generated kernels are fully unrolled straight-line functions (the paper:
"we also unroll the loops fully"), so the builder is deliberately
simple: it accumulates source lines, hands out scratch registers from an
explicit pool, and tracks a few static statistics (instruction count per
mnemonic) that the listing-count experiments consume.
"""

from __future__ import annotations

from collections import Counter

from repro.errors import KernelError

#: Registers a bare-metal kernel may freely use.  Everything except
#: ``zero``, ``ra`` (return address), ``sp`` and ``a0`` (result pointer)
#: is available; ``a1``/``a2`` come last so operand pointers are only
#: recycled once the generator has consumed them.
KERNEL_REGISTER_POOL: tuple[str, ...] = (
    "t0", "t1", "t2", "t3", "t4", "t5", "t6",
    "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9",
    "s10", "s11",
    "a3", "a4", "a5", "a6", "a7",
    "gp", "tp",
    "a2", "a1",
)


class RegisterPool:
    """Hands out named registers; raises when a kernel would spill."""

    def __init__(self, reserved: tuple[str, ...] = ()) -> None:
        self._free = [r for r in KERNEL_REGISTER_POOL if r not in reserved]
        self._taken: dict[str, str] = {}

    def take(self, purpose: str) -> str:
        """Allocate one register, labelled with *purpose* for errors."""
        if not self._free:
            raise KernelError(
                f"register pool exhausted allocating {purpose!r}; "
                f"in use: {sorted(self._taken)}"
            )
        reg = self._free.pop(0)
        self._taken[reg] = purpose
        return reg

    def take_many(self, count: int, purpose: str) -> list[str]:
        return [self.take(f"{purpose}[{i}]") for i in range(count)]

    def release(self, reg: str) -> None:
        if reg not in self._taken:
            raise KernelError(f"releasing register {reg} not in use")
        del self._taken[reg]
        self._free.insert(0, reg)

    def release_many(self, regs: list[str]) -> None:
        for reg in regs:
            self.release(reg)

    @property
    def available(self) -> int:
        return len(self._free)


class KernelBuilder:
    """Accumulates assembly lines and static statistics."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._lines: list[str] = []
        self.static_counts: Counter[str] = Counter()

    def emit(self, line: str) -> None:
        """Append one instruction (or several, ';'-separated)."""
        for part in line.split(";"):
            part = part.strip()
            if not part:
                continue
            self._lines.append(f"    {part}")
            mnemonic = part.split(None, 1)[0].lower()
            self.static_counts[mnemonic] += 1

    def emit_all(self, lines: list[str]) -> None:
        for line in lines:
            self.emit(line)

    def comment(self, text: str) -> None:
        self._lines.append(f"    # {text}")

    def label(self, name: str) -> None:
        self._lines.append(f"{name}:")

    def load_immediate(self, reg: str, value: int) -> None:
        self.emit(f"li {reg}, {value}")

    def ret(self) -> None:
        self.emit("ret")

    @property
    def static_instructions(self) -> int:
        """Static instruction count (pseudo-ops counted pre-expansion)."""
        return sum(self.static_counts.values())

    def build(self) -> str:
        """Return the finished assembly source."""
        header = f"# kernel: {self.name}\n"
        return header + "\n".join(self._lines) + "\n"
