"""Batch validation: run every kernel of a field against its oracle.

The library's trust story in one call: assemble all kernels, execute
each on randomised + boundary operands, compare against the
big-integer references, and (optionally) check constant-time trace
equivalence.  Surfaced as ``python -m repro validate``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.kernels.registry import build_all_kernels
from repro.kernels.runner import KernelRunner


@dataclass
class ValidationResult:
    """Outcome of one kernel's validation."""

    name: str
    runs: int
    passed: bool
    cycles: int = 0
    constant_time: bool | None = None
    error: str = ""


@dataclass
class ValidationReport:
    """Aggregate of a full validation sweep."""

    modulus_bits: int
    results: list[ValidationResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(r.passed for r in self.results)

    @property
    def failures(self) -> list[ValidationResult]:
        return [r for r in self.results if not r.passed]

    def summary(self) -> str:
        ok = sum(1 for r in self.results if r.passed)
        lines = [
            f"validated {len(self.results)} kernels "
            f"({self.modulus_bits}-bit modulus): {ok} passed, "
            f"{len(self.failures)} failed"
        ]
        for failure in self.failures:
            lines.append(f"  FAIL {failure.name}: {failure.error}")
        return "\n".join(lines)


def _boundary_values(kernel) -> list[tuple[int, ...]]:
    p = kernel.context.modulus
    arity = len(kernel.input_limbs)
    return [tuple(v for _ in range(arity)) for v in (0, 1, p - 1)]


def validate_kernels(
    modulus: int,
    *,
    trials: int = 3,
    seed: int = 0xA11CE,
    check_constant_time: bool = False,
) -> ValidationReport:
    """Validate the complete kernel matrix for *modulus*."""
    rng = random.Random(seed)
    report = ValidationReport(modulus_bits=modulus.bit_length())
    for name, kernel in sorted(build_all_kernels(modulus).items()):
        result = ValidationResult(name=name, runs=0, passed=True)
        try:
            runner = KernelRunner(kernel)
            inputs = [kernel.sampler(rng) for _ in range(trials)]
            # boundary operands only where the sampler's domain allows
            if kernel.operation.startswith(("fp_", "int_")):
                inputs.extend(_boundary_values(kernel))
            for values in inputs:
                run = runner.run(*values)
                result.cycles = run.cycles
                result.runs += 1
            if check_constant_time:
                from repro.analysis.ct import verify_constant_time

                ct = verify_constant_time(kernel, samples=3)
                result.constant_time = ct.constant_time
                if not ct.constant_time:
                    result.passed = False
                    result.error = f"not constant time: {ct.detail}"
        except ReproError as exc:
            result.passed = False
            result.error = str(exc)
        report.results.append(result)
    return report
