"""Execute generated kernels on the RV64 simulator and verify results.

:class:`KernelRunner` assembles a kernel once, plants the field
constants, and then runs it on arbitrary operand values, returning the
architectural result together with the timing-model cycle count.  With
``check=True`` every run is compared against the kernel's golden
reference — the paper's correctness story ("constant-time Assembler
functions, which we wrote from scratch") reduced to machine-checked
equivalence.

Because every generated kernel is branch-free straight-line code, a
runner can execute it through the trace-replay engine
(:mod:`repro.rv64.replay`): pass ``replay=True`` (per run, or as the
constructor default) and the kernel is decoded once into a compiled
trace — cached on the runner's machine — and subsequent runs replay
bound closures at a fraction of the interpreter's cost while returning
bit-identical limbs and the identical cycle count
(``tests/differential/`` proves this for every kernel variant).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro import telemetry
from repro.errors import FaultDetectedError, KernelError
from repro.kernels.layout import (
    ARG_A_ADDR,
    ARG_B_ADDR,
    CODE_BASE,
    CONST_BASE,
    ConstPoolLayout,
    RESULT_ADDR,
)
from repro.kernels.spec import Kernel
from repro.rv64.assembler import assemble
from repro.rv64.machine import Machine
from repro.rv64.pipeline import PipelineConfig, PipelineModel, ROCKET_CONFIG
from repro.rv64.registers import NUM_REGISTERS, register_index


@dataclass(frozen=True)
class KernelRun:
    """Result of one kernel execution."""

    value: int
    limbs: tuple[int, ...]
    instructions: int
    cycles: int

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0


_ARG_ADDRESSES = (ARG_A_ADDR, ARG_B_ADDR)
_ARG_REGISTERS = ("a1", "a2")
_ZERO_REGS = [0] * NUM_REGISTERS

#: Seed for the deterministic sample operands used when a kernel's
#: cycle count cannot be read off a compiled trace (cache-enabled
#: timing): every caller measures the same, reproducible execution.
STATIC_SAMPLE_SEED = 0

#: Default sampling interval of ``checked`` mode: one in this many runs
#: is cross-validated against the kernel's pure-Python reference (and
#: its cycle count against the straight-line baseline).
DEFAULT_CHECK_INTERVAL = 8


class _Hardening:
    """State of a runner's checked mode and fault-injection seam.

    Kept on a single nullable slot so the hot path of
    :meth:`KernelRunner.run` pays exactly one ``is None`` test while
    the whole feature is off (the same disabled-cost contract as
    telemetry; guarded by ``benchmarks/test_checked_overhead.py``).
    """

    __slots__ = ("enabled", "interval", "clock", "cycle_baseline",
                 "fault_hook")

    def __init__(self) -> None:
        self.enabled = False
        self.interval = DEFAULT_CHECK_INTERVAL
        self.clock = 0
        self.cycle_baseline: int | None = None
        self.fault_hook = None

    @property
    def active(self) -> bool:
        return self.enabled or self.fault_hook is not None


class KernelRunner:
    """Reusable executor for one kernel."""

    def __init__(
        self,
        kernel: Kernel,
        *,
        pipeline_config: PipelineConfig = ROCKET_CONFIG,
        schedule: bool = False,
        replay: bool = False,
        checked: bool = False,
        check_interval: int = DEFAULT_CHECK_INTERVAL,
    ) -> None:
        self.kernel = kernel
        self.replay = replay
        # hardening state (checked mode + fault-injection seam); None
        # keeps the disabled hot path at a single boolean test
        self._hardening: _Hardening | None = None
        program = assemble(kernel.source, kernel.isa)
        if schedule:
            # list-schedule the straight-line body (E10 ablation): the
            # paper's hand assembly interleaves independent MACs; this
            # pass approximates that optimisation mechanically
            from repro.analysis.schedule import schedule as _schedule

            program = _schedule(program.instructions, kernel.isa)
        self._static_size = 4 * len(program)
        self.machine = Machine(
            kernel.isa, pipeline=PipelineModel(pipeline_config)
        )
        self.entry = self.machine.load_program(program, CODE_BASE)
        self._write_const_pool()
        # fast-path plumbing: resolve argument registers once so replay
        # runs bypass name lookup and per-word memory stores
        self._arg_plan = tuple(
            (address, limbs, register_index(reg))
            for limbs, address, reg in zip(
                kernel.input_limbs, _ARG_ADDRESSES, _ARG_REGISTERS
            )
        )
        self._result_reg = register_index("a0")
        if checked:
            self.enable_checked(check_interval)

    # -- hardened execution (checked mode + fault seam) ---------------------

    def _ensure_hardening(self) -> _Hardening:
        if self._hardening is None:
            self._hardening = _Hardening()
        return self._hardening

    def enable_checked(self, interval: int = DEFAULT_CHECK_INTERVAL) -> None:
        """Cross-validate one in *interval* runs against the reference.

        A sampled run's value is compared with the kernel's pure-Python
        reference and its cycle count with the straight-line baseline
        (primed here, from the healthy compiled trace, when available);
        divergence raises :class:`~repro.errors.FaultDetectedError`.
        """
        hardening = self._ensure_hardening()
        hardening.enabled = True
        hardening.interval = max(1, int(interval))
        if hardening.cycle_baseline is None:
            trace = self.machine._trace_for(self.entry)
            if trace is not None and trace.cycles is not None:
                hardening.cycle_baseline = trace.cycles

    def disable_checked(self) -> None:
        """Turn sampled cross-validation off again."""
        if self._hardening is not None:
            self._hardening.enabled = False
            if not self._hardening.active:
                self._hardening = None

    @property
    def checked(self) -> bool:
        return (self._hardening is not None
                and self._hardening.enabled)

    def set_fault_hook(self, hook) -> None:
        """Install *hook*: ``limbs -> limbs`` applied to every raw
        result read-out (the fault-injection seam used by
        :mod:`repro.fault.inject`; not a public extension point)."""
        self._ensure_hardening().fault_hook = hook

    def clear_fault_hook(self) -> None:
        if self._hardening is not None:
            self._hardening.fault_hook = None
            if not self._hardening.active:
                self._hardening = None

    def _verify(self, values, value: int, result) -> None:
        """Sampled checked-mode validation; raises FaultDetectedError."""
        kernel = self.kernel
        hardening = self._hardening
        telemetry.record_checked_run(kernel.name)
        expected = kernel.reference(*values)
        if value != expected:
            telemetry.record_fault_detected(kernel.name, result.engine)
            raise FaultDetectedError(
                f"{kernel.name}: checked run diverged from the "
                f"pure-Python reference: got {value:#x}, expected "
                f"{expected:#x} for inputs {[hex(v) for v in values]}"
            )
        if result.cycles is not None:
            if hardening.cycle_baseline is None:
                hardening.cycle_baseline = result.cycles
            elif result.cycles != hardening.cycle_baseline:
                telemetry.record_fault_detected(kernel.name,
                                                result.engine)
                raise FaultDetectedError(
                    f"{kernel.name}: cycle count {result.cycles} != "
                    f"baseline {hardening.cycle_baseline} — impossible "
                    f"for straight-line code with data-independent "
                    f"timing; the replay cache is suspect"
                )

    def _write_const_pool(self) -> None:
        ctx = self.kernel.context
        layout = ConstPoolLayout(ctx.radix.limbs)
        mem = self.machine.mem
        mem.store_words(CONST_BASE + layout.modulus_offset,
                        ctx.modulus_limbs)
        mem.store_u64(CONST_BASE + layout.n0_offset, ctx.n0_inv)
        mem.store_u64(CONST_BASE + layout.mask_offset, ctx.radix.mask)

    @property
    def code_bytes(self) -> int:
        """Static code size (after pseudo-expansion)."""
        return self._static_size

    def run(
        self,
        *values: int,
        check: bool = True,
        replay: bool | None = None,
    ) -> KernelRun:
        """Execute the kernel on *values*; returns the result and cost.

        ``replay`` selects the trace-replay fast path (``None`` uses the
        constructor default); the result is bit- and cycle-identical to
        the interpreter's, just cheaper to produce.
        """
        kernel = self.kernel
        if len(values) != len(kernel.input_limbs):
            raise KernelError(
                f"{kernel.name} expects {len(kernel.input_limbs)} "
                f"operands, got {len(values)}"
            )
        radix = kernel.context.radix
        machine = self.machine
        use_replay = self.replay if replay is None else replay
        if use_replay and not machine.replay_supported(self.entry):
            use_replay = False  # e.g. cache-enabled timing: interpret

        if use_replay:
            # lean path: the trace replays from architectural reset, so
            # zeroing the register list is the only state to restore
            # (the pipeline model is bypassed, not mutated)
            mem = machine.mem
            regs = machine.state.regs._regs
            regs[:] = _ZERO_REGS
            for value, (address, limbs, reg_index) in zip(
                values, self._arg_plan
            ):
                mem.write_bytes(address, b"".join(
                    w.to_bytes(8, "little")
                    for w in radix.to_limbs(value, limbs=limbs)
                ))
                regs[reg_index] = address
            regs[self._result_reg] = RESULT_ADDR
            result = machine.run(self.entry, replay=True)
            raw = mem.read_bytes(RESULT_ADDR, 8 * kernel.output_limbs)
            out_limbs = tuple(
                int.from_bytes(raw[i:i + 8], "little")
                for i in range(0, len(raw), 8)
            )
        else:
            machine.reset()
            for value, (address, limbs, reg_index) in zip(
                values, self._arg_plan
            ):
                machine.mem.store_words(
                    address, radix.to_limbs(value, limbs=limbs))
                machine.state.regs._regs[reg_index] = address
            machine.state.regs._regs[self._result_reg] = RESULT_ADDR
            result = machine.run(self.entry)
            out_limbs = tuple(
                machine.mem.load_words(RESULT_ADDR, kernel.output_limbs)
            )
        hardening = self._hardening
        if hardening is None:  # disabled hardening: one boolean test
            value = radix.from_limbs(list(out_limbs))
        else:
            if hardening.fault_hook is not None:
                out_limbs = tuple(hardening.fault_hook(out_limbs))
            value = radix.from_limbs(list(out_limbs))
            if hardening.enabled:
                hardening.clock += 1
                if hardening.clock >= hardening.interval:
                    hardening.clock = 0
                    # raises FaultDetectedError on divergence, before
                    # the run is recorded anywhere downstream
                    self._verify(values, value, result)
        if check:
            expected = kernel.reference(*values)
            if value != expected:
                telemetry.record_kernel_check_failure(kernel.name)
                raise KernelError(
                    f"{kernel.name} produced {value:#x}, "
                    f"expected {expected:#x} for inputs "
                    f"{[hex(v) for v in values]}"
                )
        if result.cycles is None:
            # a zero count would silently corrupt every downstream table
            raise KernelError(
                f"{kernel.name}: execution produced no cycle count "
                f"(the runner's machine lost its pipeline model)"
            )
        # result.engine reports the engine that actually ran (a replay
        # request can fall back, e.g. when a profiler hook is attached)
        telemetry.record_kernel_run(
            kernel.name, result.engine, result.cycles,
            result.instructions_retired,
        )
        return KernelRun(
            value=value,
            limbs=out_limbs,
            instructions=result.instructions_retired,
            cycles=result.cycles,
        )

    def measure_cycles(self, *values: int) -> int:
        """Cycle count of one verified execution (timing is
        data-independent: the kernels are straight-line code)."""
        return self.run(*values).cycles

    def static_cycles(self) -> int:
        """Cycle count of one from-reset execution, without executing.

        Straight-line kernels have data-independent timing, so the
        compiled trace's precomputed cost *is* the cycle count; kernels
        that cannot be trace-compiled (e.g. cache-enabled timing
        configurations) fall back to one measured run on seeded sample
        operands.
        """
        trace = self.machine._trace_for(self.entry)
        if trace is not None and trace.cycles is not None:
            return trace.cycles
        sample = self.kernel.sampler(random.Random(STATIC_SAMPLE_SEED))
        return self.run(*sample, check=False).cycles


def run_kernel(
    kernel: Kernel,
    *values: int,
    pipeline_config: PipelineConfig = ROCKET_CONFIG,
    check: bool = True,
    replay: bool = False,
) -> KernelRun:
    """One-shot convenience wrapper."""
    return KernelRunner(
        kernel, pipeline_config=pipeline_config, replay=replay
    ).run(*values, check=check)
