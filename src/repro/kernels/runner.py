"""Execute generated kernels on the RV64 simulator and verify results.

:class:`KernelRunner` assembles a kernel once, plants the field
constants, and then runs it on arbitrary operand values, returning the
architectural result together with the timing-model cycle count.  With
``check=True`` every run is compared against the kernel's golden
reference — the paper's correctness story ("constant-time Assembler
functions, which we wrote from scratch") reduced to machine-checked
equivalence.

Because every generated kernel is branch-free straight-line code, a
runner can execute it through the fast execution tiers: ``engine=
"replay"`` (or the legacy ``replay=True``) decodes the kernel once into
a compiled closure trace (:mod:`repro.rv64.replay`); ``engine="jit"``
code-generates that trace into a single Python function
(:mod:`repro.rv64.jit`) that the runner calls directly — no
per-instruction dispatch of any kind; ``engine="aot"`` fuses the whole
trace into limb-level wide-int arithmetic (:mod:`repro.rv64.aot`) and
can warm-start from the persistent on-disk artifact cache
(:mod:`repro.rv64.artifacts`) without re-tracing at all.  Every tier
returns bit-identical limbs and the identical cycle count
(``tests/differential/`` proves the four-way equivalence for every
kernel variant), and all demote down the aot → jit → replay →
interpreter ladder whenever their preconditions fail
(:class:`~repro.rv64.aot.AotError` / :class:`~repro.rv64.jit.JitError`
refusals, non-replayable programs, cache-enabled timing, attached
trace hooks).

:meth:`KernelRunner.run_batch` executes one kernel over many operand
sets in a single call, amortising the per-call setup (engine
resolution, trace/function lookup, ``Machine.run`` bookkeeping) for
server-style throughput workloads.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro import telemetry
from repro.errors import FaultDetectedError, KernelError
from repro.kernels.layout import (
    ARG_A_ADDR,
    ARG_B_ADDR,
    CODE_BASE,
    CONST_BASE,
    ConstPoolLayout,
    RESULT_ADDR,
)
from repro.kernels.spec import Kernel
from repro.rv64.assembler import assemble
from repro.rv64.machine import (
    DEFAULT_STACK_TOP,
    ENGINES,
    HALT_ADDRESS,
    Machine,
)
from repro.rv64.pipeline import PipelineConfig, PipelineModel, ROCKET_CONFIG
from repro.rv64.registers import NUM_REGISTERS, register_index


@dataclass(frozen=True)
class KernelRun:
    """Result of one kernel execution."""

    value: int
    limbs: tuple[int, ...]
    instructions: int
    cycles: int

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0


_ARG_ADDRESSES = (ARG_A_ADDR, ARG_B_ADDR)
_ARG_REGISTERS = ("a1", "a2")
_ZERO_REGS = [0] * NUM_REGISTERS

#: Seed for the deterministic sample operands used when a kernel's
#: cycle count cannot be read off a compiled trace (cache-enabled
#: timing): every caller measures the same, reproducible execution.
STATIC_SAMPLE_SEED = 0

#: Default sampling interval of ``checked`` mode: one in this many runs
#: is cross-validated against the kernel's pure-Python reference (and
#: its cycle count against the straight-line baseline).
DEFAULT_CHECK_INTERVAL = 8


class _Hardening:
    """State of a runner's checked mode and fault-injection seam.

    Kept on a single nullable slot so the hot path of
    :meth:`KernelRunner.run` pays exactly one ``is None`` test while
    the whole feature is off (the same disabled-cost contract as
    telemetry; guarded by ``benchmarks/test_checked_overhead.py``).
    """

    __slots__ = ("enabled", "interval", "clock", "cycle_baseline",
                 "fault_hook")

    def __init__(self) -> None:
        self.enabled = False
        self.interval = DEFAULT_CHECK_INTERVAL
        self.clock = 0
        self.cycle_baseline: int | None = None
        self.fault_hook = None

    @property
    def active(self) -> bool:
        return self.enabled or self.fault_hook is not None


class KernelRunner:
    """Reusable executor for one kernel."""

    def __init__(
        self,
        kernel: Kernel,
        *,
        pipeline_config: PipelineConfig = ROCKET_CONFIG,
        schedule: bool = False,
        replay: bool = False,
        engine: str | None = None,
        checked: bool = False,
        check_interval: int = DEFAULT_CHECK_INTERVAL,
    ) -> None:
        if engine is None:
            engine = "replay" if replay else "interpreter"
        elif engine not in ENGINES:
            raise KernelError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        self.kernel = kernel
        self.engine = engine
        self._pipeline_config = pipeline_config
        # legacy alias kept for callers that predate the engine ladder
        self.replay = engine != "interpreter"
        # hardening state (checked mode + fault-injection seam); None
        # keeps the disabled hot path at a single boolean test
        self._hardening: _Hardening | None = None
        program = assemble(kernel.source, kernel.isa)
        if schedule:
            # list-schedule the straight-line body (E10 ablation): the
            # paper's hand assembly interleaves independent MACs; this
            # pass approximates that optimisation mechanically
            from repro.analysis.schedule import schedule as _schedule

            program = _schedule(program.instructions, kernel.isa)
        self._static_size = 4 * len(program)
        self.machine = Machine(
            kernel.isa, pipeline=PipelineModel(pipeline_config)
        )
        self.entry = self.machine.load_program(program, CODE_BASE)
        self._write_const_pool()
        # fast-path plumbing: resolve argument registers once so replay
        # runs bypass name lookup and per-word memory stores
        self._arg_plan = tuple(
            (address, limbs, register_index(reg))
            for limbs, address, reg in zip(
                kernel.input_limbs, _ARG_ADDRESSES, _ARG_REGISTERS
            )
        )
        self._result_reg = register_index("a0")
        # fused entry thunks (marshal/call/read-out in one generated
        # function); None on non-jit runners and unspecialisable
        # layouts.  The replay-tier variant is built lazily on first
        # run_batch (False = build attempted, layout unspecialisable).
        self._entry_thunk = None
        self._replay_thunk = None
        self._aot_thunk = None
        if engine == "jit":
            # compile eagerly: the pool hands out ready runners, and
            # fault campaigns arm against a live compiled function
            if self.machine.jit_supported(self.entry):
                from repro.rv64.jit import compile_entry

                self._entry_thunk = compile_entry(
                    self.machine, self.entry,
                    arg_plan=self._arg_plan,
                    result_reg=self._result_reg,
                    result_addr=RESULT_ADDR,
                    out_limbs=kernel.output_limbs,
                    radix=kernel.context.radix,
                    stack_top=DEFAULT_STACK_TOP,
                )
        elif engine == "aot":
            # warm-start if the artifact cache has this kernel; only
            # then fall back to trace + fuse (and persist the result).
            # The jit rung is deliberately NOT precompiled here — it
            # would need the trace, defeating the warm start; fault
            # campaigns force-compile it at arm time instead.
            self._init_aot(schedule=schedule)
        if checked:
            self.enable_checked(check_interval)

    def _init_aot(self, *, schedule: bool) -> None:
        """Bind or build the fused aot entry thunk (constructor helper).

        Resolution order: validated on-disk artifact (no re-tracing) →
        whole-kernel fusion of a fresh trace (persisted for the next
        process, when the source is artifact-safe) → rejection (the
        entry demotes to the jit rung on first run).  List-scheduled
        runners execute a *different* program than the kernel source
        hashes to, so they bypass the disk cache entirely.
        """
        from time import perf_counter

        from repro.rv64.aot import AotError, bind_entry_source, \
            compile_aot_entry
        from repro.rv64.artifacts import (
            invalidate_artifact,
            load_artifact,
            make_key,
            store_artifact,
        )

        kernel = self.kernel
        machine = self.machine
        entry = self.entry
        key = None if schedule else make_key(
            kernel, self._pipeline_config)
        aot = None
        if key is not None:
            payload = load_artifact(key)
            if payload is not None and payload["entry"] == entry:
                try:
                    aot = bind_entry_source(
                        machine, entry, payload["source"],
                        cycles=payload["cycles"],
                        instructions=payload["instructions"],
                        halts=payload["halts"],
                        exit_pc=payload["exit_pc"],
                    )
                except AotError:
                    # a valid-looking artifact that will not bind is
                    # stale in a way the digest cannot see; drop it
                    # and fall through to a cold compile
                    invalidate_artifact(key)
                    aot = None
        fresh = aot is None
        if fresh:
            layout = ConstPoolLayout(kernel.context.radix.limbs)
            start = perf_counter()
            try:
                aot = compile_aot_entry(
                    machine, entry,
                    arg_plan=self._arg_plan,
                    result_reg=self._result_reg,
                    result_addr=RESULT_ADDR,
                    out_limbs=kernel.output_limbs,
                    radix=kernel.context.radix,
                    const_window=(CONST_BASE, layout.size_bytes),
                    stack_top=DEFAULT_STACK_TOP,
                )
            except AotError as exc:
                telemetry.record_aot_reject(exc.reason)
                machine._aot_rejected.add(entry)
                return
            telemetry.record_aot_compile(perf_counter() - start)
        machine._aot_entry_cache[entry] = aot
        machine.aot_disk_key = key
        self._aot_thunk = aot.fn
        if fresh and key is not None and aot.persistable:
            store_artifact(
                key,
                entry=entry,
                source=aot.source,
                cycles=aot.cycles,
                instructions=aot.instructions_retired,
                halts=aot.halts,
                exit_pc=aot.exit_pc,
            )

    # -- hardened execution (checked mode + fault seam) ---------------------

    def _ensure_hardening(self) -> _Hardening:
        if self._hardening is None:
            self._hardening = _Hardening()
        return self._hardening

    def enable_checked(self, interval: int = DEFAULT_CHECK_INTERVAL) -> None:
        """Cross-validate one in *interval* runs against the reference.

        A sampled run's value is compared with the kernel's pure-Python
        reference and its cycle count with the straight-line baseline
        (primed here, from the healthy compiled trace, when available);
        divergence raises :class:`~repro.errors.FaultDetectedError`.
        """
        hardening = self._ensure_hardening()
        hardening.enabled = True
        hardening.interval = max(1, int(interval))
        if hardening.cycle_baseline is None:
            trace = self.machine._trace_for(self.entry)
            if trace is not None and trace.cycles is not None:
                hardening.cycle_baseline = trace.cycles

    def disable_checked(self) -> None:
        """Turn sampled cross-validation off again."""
        if self._hardening is not None:
            self._hardening.enabled = False
            if not self._hardening.active:
                self._hardening = None

    @property
    def checked(self) -> bool:
        return (self._hardening is not None
                and self._hardening.enabled)

    def set_fault_hook(self, hook) -> None:
        """Install *hook*: ``limbs -> limbs`` applied to every raw
        result read-out (the fault-injection seam used by
        :mod:`repro.fault.inject`; not a public extension point)."""
        self._ensure_hardening().fault_hook = hook

    def clear_fault_hook(self) -> None:
        if self._hardening is not None:
            self._hardening.fault_hook = None
            if not self._hardening.active:
                self._hardening = None

    def _verify(self, values, value: int, cycles, engine: str) -> None:
        """Sampled checked-mode validation; raises FaultDetectedError."""
        kernel = self.kernel
        hardening = self._hardening
        telemetry.record_checked_run(kernel.name)
        expected = kernel.reference(*values)
        if value != expected:
            telemetry.record_fault_detected(kernel.name, engine)
            raise FaultDetectedError(
                f"{kernel.name}: checked run diverged from the "
                f"pure-Python reference: got {value:#x}, expected "
                f"{expected:#x} for inputs {[hex(v) for v in values]}"
            )
        if cycles is not None:
            if hardening.cycle_baseline is None:
                hardening.cycle_baseline = cycles
            elif cycles != hardening.cycle_baseline:
                telemetry.record_fault_detected(kernel.name, engine)
                raise FaultDetectedError(
                    f"{kernel.name}: cycle count {cycles} != "
                    f"baseline {hardening.cycle_baseline} — impossible "
                    f"for straight-line code with data-independent "
                    f"timing; the replay cache is suspect"
                )

    def _write_const_pool(self) -> None:
        ctx = self.kernel.context
        layout = ConstPoolLayout(ctx.radix.limbs)
        mem = self.machine.mem
        mem.store_words(CONST_BASE + layout.modulus_offset,
                        ctx.modulus_limbs)
        mem.store_u64(CONST_BASE + layout.n0_offset, ctx.n0_inv)
        mem.store_u64(CONST_BASE + layout.mask_offset, ctx.radix.mask)

    @property
    def code_bytes(self) -> int:
        """Static code size (after pseudo-expansion)."""
        return self._static_size

    def _resolve_engine(self, engine: str) -> str:
        """Walk the aot -> jit -> replay -> interpreter demotion ladder.

        Each rung demotes exactly one step when its precondition fails;
        aot and jit demotions are counted (``aot_demotions_total`` /
        ``jit_demotions_total``), the replay -> interpreter step keeps
        its PR-1 behaviour (silent here; :meth:`Machine.run` records
        the per-run fallback).
        """
        machine = self.machine
        if engine == "aot" and not machine.aot_supported(self.entry):
            telemetry.record_aot_demotion("not_compilable")
            engine = "jit"
        if engine == "jit" and not machine.jit_supported(self.entry):
            telemetry.record_jit_demotion("not_compilable")
            engine = "replay"
        if engine == "replay" and not machine.replay_supported(self.entry):
            engine = "interpreter"  # e.g. cache-enabled timing
        return engine

    def _marshal_args(self, values) -> None:
        """Write operand limbs + argument registers (lean-path state)."""
        machine = self.machine
        mem = machine.mem
        regs = machine.state.regs._regs
        radix = self.kernel.context.radix
        regs[:] = _ZERO_REGS
        for value, (address, limbs, reg_index) in zip(
            values, self._arg_plan
        ):
            mem.write_bytes(address, b"".join(
                w.to_bytes(8, "little")
                for w in radix.to_limbs(value, limbs=limbs)
            ))
            regs[reg_index] = address
        regs[self._result_reg] = RESULT_ADDR

    def _execute_fast(self, engine: str):
        """Run from the marshalled lean-path state.

        Returns ``(engine_ran, cycles, instructions)``.  For jit the
        compiled function is called directly — no ``Machine.run``
        bookkeeping on the per-call path (that per-call overhead is
        what the jit tier exists to eliminate); architectural pc/halted
        and the ``machine_runs_total`` counter are maintained exactly
        as :meth:`Machine.run` would.  The function is re-fetched from
        the machine's cache on every call so trace invalidation (and
        fault-campaign poisoning) takes effect immediately.
        """
        machine = self.machine
        if engine == "aot" and not machine._trace_hooks:
            # the machine-level fused function: memory-exact (runtime
            # stores), so the generic read-out below it still holds —
            # this is the hardened/fallback aot path, not the thunk
            aotfn = machine._aot_for(self.entry)
            if aotfn is not None:
                state = machine.state
                aotfn.fn(state.regs._regs, DEFAULT_STACK_TOP)
                state.pc = aotfn.exit_pc
                state.halted = aotfn.halts
                telemetry.record_machine_run("aot")
                return "aot", aotfn.cycles, aotfn.instructions_retired
            telemetry.record_aot_demotion("not_compilable")
            engine = "jit"
        if engine == "jit" and not machine._trace_hooks:
            jitfn = machine._jit_for(self.entry)
            if jitfn is not None:
                state = machine.state
                jitfn.fn(state.regs._regs, DEFAULT_STACK_TOP)
                state.pc = jitfn.exit_pc
                state.halted = jitfn.halts
                telemetry.record_machine_run("jit")
                return "jit", jitfn.cycles, jitfn.instructions_retired
        result = machine.run(self.entry, engine=engine)
        return result.engine, result.cycles, result.instructions_retired

    def run(
        self,
        *values: int,
        check: bool = True,
        replay: bool | None = None,
        engine: str | None = None,
    ) -> KernelRun:
        """Execute the kernel on *values*; returns the result and cost.

        ``engine`` selects the execution tier (``None`` uses the
        constructor default; the legacy ``replay`` flag maps ``True`` to
        ``"replay"`` and ``False`` to ``"interpreter"``).  Whatever the
        tier, the result is bit- and cycle-identical to the
        interpreter's, just cheaper to produce; unsatisfiable requests
        demote down the aot -> jit -> replay -> interpreter ladder.
        """
        kernel = self.kernel
        if len(values) != len(kernel.input_limbs):
            raise KernelError(
                f"{kernel.name} expects {len(kernel.input_limbs)} "
                f"operands, got {len(values)}"
            )
        radix = kernel.context.radix
        machine = self.machine
        if engine is None:
            if replay is None:
                engine = self.engine
            else:
                engine = "replay" if replay else "interpreter"
        elif engine not in ENGINES:
            raise KernelError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )

        if (engine == "aot" and self._hardening is None
                and not machine._trace_hooks):
            # whole-kernel fast path: the fused thunk computes the
            # result limbs directly from the operand values — no limb
            # marshalling, no memory traffic, no per-instruction
            # statements; falls through (None) if the thunk was
            # evicted/poisoned or an operand is out of range
            thunk = self._aot_thunk
            if thunk is not None:
                out = thunk(*values)
                if out is not None:
                    value, out_limbs, cycles, instructions = out
                    telemetry.record_aot_cache_hit()
                    telemetry.record_machine_run("aot")
                    if check:
                        expected = kernel.reference(*values)
                        if value != expected:
                            telemetry.record_kernel_check_failure(
                                kernel.name)
                            raise KernelError(
                                f"{kernel.name} produced {value:#x}, "
                                f"expected {expected:#x} for inputs "
                                f"{[hex(v) for v in values]}"
                            )
                    if cycles is None:
                        raise KernelError(
                            f"{kernel.name}: execution produced no "
                            f"cycle count (the runner's machine lost "
                            f"its pipeline model)"
                        )
                    telemetry.record_kernel_run(
                        kernel.name, "aot", cycles, instructions)
                    return KernelRun(
                        value=value,
                        limbs=out_limbs,
                        instructions=instructions,
                        cycles=cycles,
                    )
        if (engine == "jit" and self._hardening is None
                and not machine._trace_hooks):
            # fused fast path: one generated thunk does limb split,
            # operand stores, register init, the compiled call and the
            # read-out; falls through (None) if the compiled function
            # was evicted or an operand is out of range
            thunk = self._entry_thunk
            if thunk is not None:
                out = thunk(*values)
                if out is not None:
                    value, out_limbs, cycles, instructions = out
                    telemetry.record_jit_cache_hit()
                    telemetry.record_machine_run("jit")
                    if check:
                        expected = kernel.reference(*values)
                        if value != expected:
                            telemetry.record_kernel_check_failure(
                                kernel.name)
                            raise KernelError(
                                f"{kernel.name} produced {value:#x}, "
                                f"expected {expected:#x} for inputs "
                                f"{[hex(v) for v in values]}"
                            )
                    if cycles is None:
                        raise KernelError(
                            f"{kernel.name}: execution produced no "
                            f"cycle count (the runner's machine lost "
                            f"its pipeline model)"
                        )
                    telemetry.record_kernel_run(
                        kernel.name, "jit", cycles, instructions)
                    return KernelRun(
                        value=value,
                        limbs=out_limbs,
                        instructions=instructions,
                        cycles=cycles,
                    )
        engine = self._resolve_engine(engine)

        if engine != "interpreter":
            # lean path: traces and jit functions run from architectural
            # reset, so zeroing the register list is the only state to
            # restore (the pipeline model is bypassed, not mutated)
            self._marshal_args(values)
            ran, cycles, instructions = self._execute_fast(engine)
            raw = machine.mem.read_bytes(
                RESULT_ADDR, 8 * kernel.output_limbs)
            out_limbs = tuple(
                int.from_bytes(raw[i:i + 8], "little")
                for i in range(0, len(raw), 8)
            )
        else:
            machine.reset()
            for value, (address, limbs, reg_index) in zip(
                values, self._arg_plan
            ):
                machine.mem.store_words(
                    address, radix.to_limbs(value, limbs=limbs))
                machine.state.regs._regs[reg_index] = address
            machine.state.regs._regs[self._result_reg] = RESULT_ADDR
            result = machine.run(self.entry)
            ran = result.engine
            cycles = result.cycles
            instructions = result.instructions_retired
            out_limbs = tuple(
                machine.mem.load_words(RESULT_ADDR, kernel.output_limbs)
            )
        hardening = self._hardening
        if hardening is None:  # disabled hardening: one boolean test
            value = radix.from_limbs(list(out_limbs))
        else:
            if hardening.fault_hook is not None:
                out_limbs = tuple(hardening.fault_hook(out_limbs))
            value = radix.from_limbs(list(out_limbs))
            if hardening.enabled:
                hardening.clock += 1
                if hardening.clock >= hardening.interval:
                    hardening.clock = 0
                    # raises FaultDetectedError on divergence, before
                    # the run is recorded anywhere downstream
                    self._verify(values, value, cycles, ran)
        if check:
            expected = kernel.reference(*values)
            if value != expected:
                telemetry.record_kernel_check_failure(kernel.name)
                raise KernelError(
                    f"{kernel.name} produced {value:#x}, "
                    f"expected {expected:#x} for inputs "
                    f"{[hex(v) for v in values]}"
                )
        if cycles is None:
            # a zero count would silently corrupt every downstream table
            raise KernelError(
                f"{kernel.name}: execution produced no cycle count "
                f"(the runner's machine lost its pipeline model)"
            )
        # ``ran`` reports the engine that actually ran (a jit or replay
        # request can demote, e.g. when a profiler hook is attached)
        telemetry.record_kernel_run(kernel.name, ran, cycles, instructions)
        return KernelRun(
            value=value,
            limbs=out_limbs,
            instructions=instructions,
            cycles=cycles,
        )

    def run_batch(
        self,
        operand_sets,
        *,
        check: bool = True,
        engine: str | None = None,
    ) -> list[KernelRun]:
        """Execute the kernel once per operand set, amortising setup.

        Semantically identical to ``[self.run(*v) for v in
        operand_sets]`` — same values, limbs, cycle counts, and
        per-run ``kernel_runs_total`` accounting — but the fast tiers
        resolve the engine, compiled trace / jit function, and cycle
        cost **once** and then loop only the marshal/execute/read-out
        core per item.  One extra ``kernel_batches_total`` /
        ``kernel_batch_items_total`` sample records the batching
        itself.  Hardened runners (checked mode or an armed fault
        hook) and interpreter runs take the exact scalar path per item
        so every safety check still fires.
        """
        kernel = self.kernel
        operand_sets = [tuple(values) for values in operand_sets]
        arity = len(kernel.input_limbs)
        for values in operand_sets:
            if len(values) != arity:
                raise KernelError(
                    f"{kernel.name} expects {arity} operands, "
                    f"got {len(values)}"
                )
        if engine is None:
            engine = self.engine
        elif engine not in ENGINES:
            raise KernelError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        engine = self._resolve_engine(engine)
        machine = self.machine
        if (engine == "interpreter" or self._hardening is not None
                or machine._trace_hooks):
            runs = [self.run(*values, check=check, engine=engine)
                    for values in operand_sets]
            telemetry.record_kernel_batch(kernel.name, engine, len(runs))
            return runs

        mem = machine.mem
        state = machine.state
        regs = state.regs._regs
        radix = kernel.context.radix
        arg_plan = self._arg_plan
        result_reg = self._result_reg
        out_bytes = 8 * kernel.output_limbs
        name = kernel.name
        reference = kernel.reference if check else None
        record_run = telemetry.record_kernel_run
        record_machine = telemetry.record_machine_run
        if engine == "aot":
            thunk = self._aot_thunk
        elif engine == "jit":
            thunk = self._entry_thunk
        else:
            thunk = self._replay_thunk
            if thunk is None:
                from repro.rv64.jit import compile_entry

                thunk = compile_entry(
                    machine, self.entry,
                    arg_plan=arg_plan,
                    result_reg=result_reg,
                    result_addr=RESULT_ADDR,
                    out_limbs=kernel.output_limbs,
                    radix=radix,
                    stack_top=DEFAULT_STACK_TOP,
                    tier="replay",
                )
                self._replay_thunk = thunk if thunk is not None else False
            if thunk is False:
                thunk = None
        if thunk is not None:
            # fused batch loop: the generated thunk per item, nothing
            # else (per-item telemetry mirrors the scalar path)
            runs = []
            for values in operand_sets:
                out = thunk(*values)
                if out is None:
                    runs.append(self.run(*values, check=check,
                                         engine=engine))
                    continue
                value, out_limbs, cycles, instructions = out
                if reference is not None:
                    expected = reference(*values)
                    if value != expected:
                        telemetry.record_kernel_check_failure(name)
                        raise KernelError(
                            f"{name} produced {value:#x}, expected "
                            f"{expected:#x} for inputs "
                            f"{[hex(v) for v in values]}"
                        )
                if cycles is None:
                    raise KernelError(
                        f"{name}: execution produced no cycle count "
                        f"(the runner's machine lost its pipeline "
                        f"model)"
                    )
                if engine == "jit":
                    telemetry.record_jit_cache_hit()
                elif engine == "aot":
                    telemetry.record_aot_cache_hit()
                record_machine(engine)
                record_run(name, engine, cycles, instructions)
                runs.append(KernelRun(
                    value=value,
                    limbs=out_limbs,
                    instructions=instructions,
                    cycles=cycles,
                ))
            telemetry.record_kernel_batch(name, engine, len(runs))
            return runs
        if engine == "aot":
            # memory-exact machine-level variant (the entry thunk is
            # absent here, e.g. the fuse was rejected for the thunk's
            # stricter static-addressing contract)
            aotfn = (machine._aot_cache.get(self.entry)
                     or machine._aot_for(self.entry))
            fn = aotfn.fn
            cycles = aotfn.cycles
            instructions = aotfn.instructions_retired
            exit_pc, halts = aotfn.exit_pc, aotfn.halts

            def execute() -> None:
                fn(regs, DEFAULT_STACK_TOP)
        elif engine == "jit":
            jitfn = (machine._jit_cache.get(self.entry)
                     or machine._jit_for(self.entry))
            fn = jitfn.fn
            cycles = jitfn.cycles
            instructions = jitfn.instructions_retired
            exit_pc, halts = jitfn.exit_pc, jitfn.halts

            def execute() -> None:
                fn(regs, DEFAULT_STACK_TOP)
        else:
            trace = machine._trace_for(self.entry)
            steps = trace.steps
            cycles = trace.cycles
            instructions = trace.instructions_retired
            exit_pc, halts = trace.exit_pc, trace.halts

            def execute() -> None:
                regs[1] = HALT_ADDRESS
                regs[2] = DEFAULT_STACK_TOP
                for step in steps:
                    step()
        if cycles is None:
            raise KernelError(
                f"{kernel.name}: execution produced no cycle count "
                f"(the runner's machine lost its pipeline model)"
            )
        runs: list[KernelRun] = []
        for values in operand_sets:
            regs[:] = _ZERO_REGS
            for value, (address, limbs, reg_index) in zip(
                values, arg_plan
            ):
                mem.write_bytes(address, b"".join(
                    w.to_bytes(8, "little")
                    for w in radix.to_limbs(value, limbs=limbs)
                ))
                regs[reg_index] = address
            regs[result_reg] = RESULT_ADDR
            execute()
            raw = mem.read_bytes(RESULT_ADDR, out_bytes)
            out_limbs = tuple(
                int.from_bytes(raw[i:i + 8], "little")
                for i in range(0, out_bytes, 8)
            )
            value = radix.from_limbs(list(out_limbs))
            if reference is not None:
                expected = reference(*values)
                if value != expected:
                    telemetry.record_kernel_check_failure(name)
                    raise KernelError(
                        f"{name} produced {value:#x}, expected "
                        f"{expected:#x} for inputs "
                        f"{[hex(v) for v in values]}"
                    )
            if engine == "jit":
                telemetry.record_jit_cache_hit()
            record_machine(engine)
            record_run(name, engine, cycles, instructions)
            runs.append(KernelRun(
                value=value,
                limbs=out_limbs,
                instructions=instructions,
                cycles=cycles,
            ))
        if runs:
            state.pc = exit_pc
            state.halted = halts
        telemetry.record_kernel_batch(name, engine, len(runs))
        return runs

    def measure_cycles(self, *values: int) -> int:
        """Cycle count of one verified execution (timing is
        data-independent: the kernels are straight-line code)."""
        return self.run(*values).cycles

    def static_cycles(self) -> int:
        """Cycle count of one from-reset execution, without executing.

        Straight-line kernels have data-independent timing, so the
        compiled trace's precomputed cost *is* the cycle count; kernels
        that cannot be trace-compiled (e.g. cache-enabled timing
        configurations) fall back to one measured run on seeded sample
        operands.
        """
        trace = self.machine._trace_for(self.entry)
        if trace is not None and trace.cycles is not None:
            return trace.cycles
        sample = self.kernel.sampler(random.Random(STATIC_SAMPLE_SEED))
        return self.run(*sample, check=False).cycles


def run_kernel(
    kernel: Kernel,
    *values: int,
    pipeline_config: PipelineConfig = ROCKET_CONFIG,
    check: bool = True,
    replay: bool = False,
    engine: str | None = None,
) -> KernelRun:
    """One-shot convenience wrapper."""
    return KernelRunner(
        kernel, pipeline_config=pipeline_config, replay=replay,
        engine=engine,
    ).run(*values, check=check)
