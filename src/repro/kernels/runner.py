"""Execute generated kernels on the RV64 simulator and verify results.

:class:`KernelRunner` assembles a kernel once, plants the field
constants, and then runs it on arbitrary operand values, returning the
architectural result together with the timing-model cycle count.  With
``check=True`` every run is compared against the kernel's golden
reference — the paper's correctness story ("constant-time Assembler
functions, which we wrote from scratch") reduced to machine-checked
equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import KernelError
from repro.kernels.layout import (
    ARG_A_ADDR,
    ARG_B_ADDR,
    CODE_BASE,
    CONST_BASE,
    ConstPoolLayout,
    RESULT_ADDR,
)
from repro.kernels.spec import Kernel
from repro.rv64.assembler import assemble
from repro.rv64.machine import Machine
from repro.rv64.pipeline import PipelineConfig, PipelineModel, ROCKET_CONFIG


@dataclass(frozen=True)
class KernelRun:
    """Result of one kernel execution."""

    value: int
    limbs: tuple[int, ...]
    instructions: int
    cycles: int

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0


_ARG_ADDRESSES = (ARG_A_ADDR, ARG_B_ADDR)
_ARG_REGISTERS = ("a1", "a2")


class KernelRunner:
    """Reusable executor for one kernel."""

    def __init__(
        self,
        kernel: Kernel,
        *,
        pipeline_config: PipelineConfig = ROCKET_CONFIG,
        schedule: bool = False,
    ) -> None:
        self.kernel = kernel
        program = assemble(kernel.source, kernel.isa)
        if schedule:
            # list-schedule the straight-line body (E10 ablation): the
            # paper's hand assembly interleaves independent MACs; this
            # pass approximates that optimisation mechanically
            from repro.analysis.schedule import schedule as _schedule

            program = _schedule(program.instructions, kernel.isa)
        self._static_size = 4 * len(program)
        self.machine = Machine(
            kernel.isa, pipeline=PipelineModel(pipeline_config)
        )
        self.entry = self.machine.load_program(program, CODE_BASE)
        self._write_const_pool()

    def _write_const_pool(self) -> None:
        ctx = self.kernel.context
        layout = ConstPoolLayout(ctx.radix.limbs)
        mem = self.machine.mem
        mem.store_words(CONST_BASE + layout.modulus_offset,
                        ctx.modulus_limbs)
        mem.store_u64(CONST_BASE + layout.n0_offset, ctx.n0_inv)
        mem.store_u64(CONST_BASE + layout.mask_offset, ctx.radix.mask)

    @property
    def code_bytes(self) -> int:
        """Static code size (after pseudo-expansion)."""
        return self._static_size

    def run(self, *values: int, check: bool = True) -> KernelRun:
        """Execute the kernel on *values*; returns the result and cost."""
        kernel = self.kernel
        if len(values) != len(kernel.input_limbs):
            raise KernelError(
                f"{kernel.name} expects {len(kernel.input_limbs)} "
                f"operands, got {len(values)}"
            )
        radix = kernel.context.radix
        machine = self.machine
        machine.reset()
        for value, limbs, address, reg in zip(
            values, kernel.input_limbs, _ARG_ADDRESSES, _ARG_REGISTERS
        ):
            machine.mem.store_words(address,
                                    radix.to_limbs(value, limbs=limbs))
            machine.regs[reg] = address
        machine.regs["a0"] = RESULT_ADDR

        result = machine.run(self.entry)

        out_limbs = tuple(
            machine.mem.load_words(RESULT_ADDR, kernel.output_limbs)
        )
        value = radix.from_limbs(list(out_limbs))
        if check:
            expected = kernel.reference(*values)
            if value != expected:
                raise KernelError(
                    f"{kernel.name} produced {value:#x}, "
                    f"expected {expected:#x} for inputs "
                    f"{[hex(v) for v in values]}"
                )
        cycles = result.cycles if result.cycles is not None else 0
        return KernelRun(
            value=value,
            limbs=out_limbs,
            instructions=result.instructions_retired,
            cycles=cycles,
        )

    def measure_cycles(self, *values: int) -> int:
        """Cycle count of one verified execution (timing is
        data-independent: the kernels are straight-line code)."""
        return self.run(*values).cycles


def run_kernel(
    kernel: Kernel,
    *values: int,
    pipeline_config: PipelineConfig = ROCKET_CONFIG,
    check: bool = True,
) -> KernelRun:
    """One-shot convenience wrapper."""
    return KernelRunner(kernel, pipeline_config=pipeline_config).run(
        *values, check=check
    )
