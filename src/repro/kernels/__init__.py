"""Generated assembly kernels for the four implementation variants.

The paper's hand-written constant-time assembly is reproduced by
*generators* that emit fully-unrolled RV64 assembly, parameterised on
the field (so both CSIDH-512 and toy instances work):

* :mod:`repro.kernels.fullradix` — 64-bit digits, Listings 1/3 MACs;
* :mod:`repro.kernels.reducedradix` — 57-bit limbs, Listings 2/4 MACs,
  delayed carries, ``sraiadd`` cascades;
* :mod:`repro.kernels.registry` — the operation x variant matrix;
* :mod:`repro.kernels.runner` — execution + golden-reference checking.
"""

from repro.kernels.builder import (
    KERNEL_REGISTER_POOL,
    KernelBuilder,
    RegisterPool,
)
from repro.kernels.layout import (
    ARG_A_ADDR,
    ARG_B_ADDR,
    CODE_BASE,
    CONST_BASE,
    ConstPoolLayout,
    RESULT_ADDR,
    SCRATCH_ADDR,
)
from repro.kernels.registry import (
    build_all_kernels,
    build_kernel,
    cached_kernels,
    cached_runner,
    make_contexts,
)
from repro.kernels.runner import KernelRun, KernelRunner, run_kernel
from repro.kernels.spec import (
    ALL_VARIANTS,
    Kernel,
    OP_FAST_REDUCE,
    OP_FAST_REDUCE_ADD,
    OP_FP_ADD,
    OP_FP_MUL,
    OP_FP_SQR,
    OP_FP_SUB,
    OP_INT_MUL,
    OP_INT_SQR,
    OP_MONT_REDC,
    TABLE4_OPERATIONS,
    VARIANT_FULL_ISA,
    VARIANT_FULL_ISE,
    VARIANT_REDUCED_ISA,
    VARIANT_REDUCED_ISE,
)

__all__ = [
    "KERNEL_REGISTER_POOL",
    "KernelBuilder",
    "RegisterPool",
    "ARG_A_ADDR",
    "ARG_B_ADDR",
    "CODE_BASE",
    "CONST_BASE",
    "ConstPoolLayout",
    "RESULT_ADDR",
    "SCRATCH_ADDR",
    "build_all_kernels",
    "build_kernel",
    "cached_kernels",
    "cached_runner",
    "make_contexts",
    "KernelRun",
    "KernelRunner",
    "run_kernel",
    "ALL_VARIANTS",
    "Kernel",
    "OP_FAST_REDUCE",
    "OP_FAST_REDUCE_ADD",
    "OP_FP_ADD",
    "OP_FP_MUL",
    "OP_FP_SQR",
    "OP_FP_SUB",
    "OP_INT_MUL",
    "OP_INT_SQR",
    "OP_MONT_REDC",
    "TABLE4_OPERATIONS",
    "VARIANT_FULL_ISA",
    "VARIANT_FULL_ISE",
    "VARIANT_REDUCED_ISA",
    "VARIANT_REDUCED_ISE",
]
