"""Memory layout conventions shared by kernel generators and the runner.

Kernels follow a minimal bare-metal calling convention:

* ``a0`` — pointer to the result buffer;
* ``a1`` — pointer to the first operand;
* ``a2`` — pointer to the second operand (when present);
* ``ra`` — return address (the machine plants its halt sentinel there).

Field constants (modulus limbs, the Montgomery factor ``n0' = -p^-1``
and the limb mask) live in a constant pool at a fixed address baked into
the kernel code, mirroring how the paper's assembly functions reference
the CSIDH-512 modulus as global data.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Base address of the constant pool (fits a single ``lui``).
CONST_BASE = 0x2000

#: Default operand placement chosen by the runner (kernels are agnostic).
#: The buffers are deliberately staggered across cache-set offsets: with
#: page-aligned bases they would all alias into the same 4-way sets of
#: the 16 kB D$ and thrash (5 live regions > 4 ways).
ARG_A_ADDR = 0x0001_0000
ARG_B_ADDR = 0x0001_1200
RESULT_ADDR = 0x0001_2400
SCRATCH_ADDR = 0x0001_3600

#: Code is loaded here.
CODE_BASE = 0x0000_1000


@dataclass(frozen=True)
class ConstPoolLayout:
    """Offsets (bytes from CONST_BASE) of the field constants."""

    limbs: int

    @property
    def modulus_offset(self) -> int:
        return 0

    @property
    def n0_offset(self) -> int:
        return 8 * self.limbs

    @property
    def mask_offset(self) -> int:
        return 8 * self.limbs + 8

    @property
    def size_bytes(self) -> int:
        return 8 * self.limbs + 16
