"""Full-radix (64-bit digit) assembly kernel generators (Sect. 3.1/3.2).

Every generator emits fully-unrolled straight-line RV64 assembly for the
CSIDH-512 field operations, in two flavours:

* *ISA-only* — base RV64IM instructions, MAC per Listing 1;
* *ISE-supported* — ``maddlu``/``maddhu``/``cadd``, MAC per Listing 3.

The 192-bit product-scanning accumulator lives in three registers
``(e || h || l)``; column changes are free register renames (the paper:
"the proper alignment of the accumulator is 'naturally' given").

Operands are little-endian 64-bit digit arrays; the modulus and the
Montgomery factor ``n0' = -p^-1 mod 2^64`` are read from the constant
pool (see :mod:`repro.kernels.layout`).
"""

from __future__ import annotations

from repro.core.macros import mac_full_radix_isa, mac_full_radix_ise
from repro.errors import KernelError
from repro.kernels.builder import (
    KERNEL_REGISTER_POOL,
    KernelBuilder,
    RegisterPool,
)
from repro.kernels.layout import CONST_BASE, ConstPoolLayout
from repro.mpi.montgomery import MontgomeryContext


def _available(reserved: tuple[str, ...]) -> int:
    return len(KERNEL_REGISTER_POOL) - len(set(reserved))


def _check_full_radix(ctx: MontgomeryContext) -> int:
    if ctx.radix.bits != 64:
        raise KernelError(
            f"full-radix generator got a {ctx.radix.bits}-bit radix"
        )
    return ctx.radix.limbs


def _zero(b: KernelBuilder, reg: str) -> None:
    b.emit(f"mv {reg}, zero")


def _emit_acc_add(
    b: KernelBuilder, e: str, h: str, l: str, y: str, *, use_ise: bool
) -> None:
    """Add the 64-bit value in *y* into the accumulator ``(e||h||l)``."""
    b.emit(f"add {l}, {l}, {y}")
    b.emit(f"sltu {y}, {l}, {y}")
    if use_ise:
        b.emit(f"cadd {e}, {h}, {y}, {e}")
        b.emit(f"add {h}, {h}, {y}")
    else:
        b.emit(f"add {h}, {h}, {y}")
        b.emit(f"sltu {y}, {h}, {y}")
        b.emit(f"add {e}, {e}, {y}")


def _emit_mac(
    b: KernelBuilder,
    e: str, h: str, l: str,
    a: str, x: str,
    y: str, z: str,
    *,
    use_ise: bool,
) -> None:
    if use_ise:
        b.emit_all(mac_full_radix_ise(e, h, l, a, x, z))
    else:
        b.emit_all(mac_full_radix_isa(e, h, l, a, x, y, z))


def _emit_doubled_mac_isa(
    b: KernelBuilder,
    e: str, h: str, l: str,
    a: str, x: str,
    y: str, z: str, u: str, v: str,
) -> None:
    """Accumulate ``2 * a * x`` into ``(e||h||l)`` — the squaring
    cross-term.  The 128-bit product is doubled by shifting (the doubled
    digit trick of the reduced radix is impossible at 64 bits/digit)."""
    b.emit(f"mulhu {z}, {a}, {x}")
    b.emit(f"mul {y}, {a}, {x}")
    b.emit(f"srli {u}, {z}, 63")   # bit 127 -> accumulator word e
    b.emit(f"slli {z}, {z}, 1")
    b.emit(f"srli {v}, {y}, 63")
    b.emit(f"or {z}, {z}, {v}")
    b.emit(f"slli {y}, {y}, 1")
    b.emit(f"add {l}, {l}, {y}")
    b.emit(f"sltu {y}, {l}, {y}")
    b.emit(f"add {z}, {z}, {y}")
    b.emit(f"add {h}, {h}, {z}")
    b.emit(f"sltu {z}, {h}, {z}")
    b.emit(f"add {e}, {e}, {z}")
    b.emit(f"add {e}, {e}, {u}")


# ---------------------------------------------------------------------------
# Integer multiplication / squaring bodies
# ---------------------------------------------------------------------------

def emit_int_mul_body(
    b: KernelBuilder,
    ctx: MontgomeryContext,
    *,
    use_ise: bool,
    rptr: str = "a0",
    aptr: str = "a1",
    bptr: str = "a2",
    square: bool = False,
) -> None:
    """Product-scanning ``R = A * B`` (2l digits out).

    With *square* the second operand is ignored and ``R = A^2`` is
    computed; the ISE variant reuses the multiplication flow (as the
    paper does — Table 4 shows identical mul/sqr cycle counts for the
    full-radix ISE version), while the ISA variant uses the
    shift-doubled cross products.
    """
    l = _check_full_radix(ctx)
    reserved = (rptr, aptr, bptr)
    pool = RegisterPool(reserved=reserved)
    A = pool.take_many(l, "a")
    for i in range(l):
        b.emit(f"ld {A[i]}, {8 * i}({aptr})")

    if square and not use_ise:
        _emit_sqr_columns_isa(b, pool, A, rptr, l)
        return

    # Beyond ~10 digits both operands no longer fit the register file
    # (the paper's "register space is large enough ... up to 512 bits");
    # larger widths keep A resident and stream B one digit per MAC.
    stream_b = (not square) and (2 * l + 5 > _available(reserved))
    if square:
        B = A
        breg = ""
    elif stream_b:
        B = []
        breg = pool.take("breg")
    else:
        B = pool.take_many(l, "b")
        for i in range(l):
            b.emit(f"ld {B[i]}, {8 * i}({bptr})")

    acc = pool.take_many(3, "acc")  # [l, h, e]
    y = pool.take("y")
    z = pool.take("z")
    for reg in acc:
        _zero(b, reg)

    for k in range(2 * l - 1):
        lo_i, hi_i = max(0, k - l + 1), min(k, l - 1)
        b.comment(f"column {k}")
        for i in range(lo_i, hi_i + 1):
            if stream_b:
                b.emit(f"ld {breg}, {8 * (k - i)}({bptr})")
                b_digit = breg
            else:
                b_digit = B[k - i]
            _emit_mac(b, acc[2], acc[1], acc[0], A[i], b_digit, y, z,
                      use_ise=use_ise)
        b.emit(f"sd {acc[0]}, {8 * k}({rptr})")
        acc = [acc[1], acc[2], acc[0]]
        if k < 2 * l - 2:
            _zero(b, acc[2])
    b.emit(f"sd {acc[0]}, {8 * (2 * l - 1)}({rptr})")


def _emit_sqr_columns_isa(
    b: KernelBuilder,
    pool: RegisterPool,
    A: list[str],
    rptr: str,
    l: int,
) -> None:
    """ISA-only full-radix squaring columns (doubled cross products)."""
    acc = pool.take_many(3, "acc")
    y = pool.take("y")
    z = pool.take("z")
    u = pool.take("u")
    v = pool.take("v")
    for reg in acc:
        _zero(b, reg)

    for k in range(2 * l - 1):
        lo_i, hi_i = max(0, k - l + 1), min(k, l - 1)
        b.comment(f"column {k}")
        for i in range(lo_i, hi_i + 1):
            j = k - i
            if i > j:
                break
            if i == j:
                _emit_mac(b, acc[2], acc[1], acc[0], A[i], A[i], y, z,
                          use_ise=False)
            else:
                _emit_doubled_mac_isa(b, acc[2], acc[1], acc[0],
                                      A[i], A[j], y, z, u, v)
        b.emit(f"sd {acc[0]}, {8 * k}({rptr})")
        acc = [acc[1], acc[2], acc[0]]
        if k < 2 * l - 2:
            _zero(b, acc[2])
    b.emit(f"sd {acc[0]}, {8 * (2 * l - 1)}({rptr})")


# ---------------------------------------------------------------------------
# Montgomery (SPS) reduction body
# ---------------------------------------------------------------------------

def emit_mont_redc_body(
    b: KernelBuilder,
    ctx: MontgomeryContext,
    *,
    use_ise: bool,
    rptr: str = "a0",
    tptr: str = "a1",
) -> None:
    """Separated-product-scanning Montgomery reduction.

    Input: 2l-digit ``T`` at *tptr*; output: l digits of
    ``T * R^-1 mod p`` in ``[0, 2p)`` at *rptr*.
    """
    l = _check_full_radix(ctx)
    layout = ConstPoolLayout(l)
    reserved = (rptr, tptr)
    pool = RegisterPool(reserved=reserved)

    # With long operands the modulus digits are streamed from the
    # constant pool per MAC instead of staying register-resident.
    stream_p = 2 * l + 6 > _available(reserved)

    cb = pool.take("constbase")
    b.emit(f"li {cb}, {CONST_BASE}")
    if stream_p:
        P: list[str] = []
        preg = pool.take("preg")
    else:
        P = pool.take_many(l, "p")
        for i in range(l):
            b.emit(f"ld {P[i]}, {layout.modulus_offset + 8 * i}({cb})")
        preg = ""
    n0 = pool.take("n0")
    b.emit(f"ld {n0}, {layout.n0_offset}({cb})")
    if not stream_p:
        pool.release(cb)

    def p_digit(index: int) -> str:
        if not stream_p:
            return P[index]
        b.emit(f"ld {preg}, "
               f"{layout.modulus_offset + 8 * index}({cb})")
        return preg

    Q = pool.take_many(l, "q")
    acc = pool.take_many(3, "acc")  # [l, h, e]
    y = pool.take("y")
    z = pool.take("z")
    for reg in acc:
        _zero(b, reg)

    for i in range(l):
        b.comment(f"reduction phase 1, column {i}")
        b.emit(f"ld {y}, {8 * i}({tptr})")
        _emit_acc_add(b, acc[2], acc[1], acc[0], y, use_ise=use_ise)
        for j in range(i):
            _emit_mac(b, acc[2], acc[1], acc[0], Q[j], p_digit(i - j),
                      y, z, use_ise=use_ise)
        b.emit(f"mul {Q[i]}, {acc[0]}, {n0}")
        _emit_mac(b, acc[2], acc[1], acc[0], Q[i], p_digit(0), y, z,
                  use_ise=use_ise)
        # low digit is now zero by construction; renaming shifts the acc
        acc = [acc[1], acc[2], acc[0]]
        _zero(b, acc[2])

    for i in range(l, 2 * l):
        b.comment(f"reduction phase 2, column {i}")
        b.emit(f"ld {y}, {8 * i}({tptr})")
        _emit_acc_add(b, acc[2], acc[1], acc[0], y, use_ise=use_ise)
        for j in range(i - l + 1, l):
            _emit_mac(b, acc[2], acc[1], acc[0], Q[j], p_digit(i - j),
                      y, z, use_ise=use_ise)
        b.emit(f"sd {acc[0]}, {8 * (i - l)}({rptr})")
        if i < 2 * l - 1:
            acc = [acc[1], acc[2], acc[0]]
            _zero(b, acc[2])


# ---------------------------------------------------------------------------
# MPI add/sub helpers with explicit carry/borrow chains
# ---------------------------------------------------------------------------

def _emit_sub_with_borrow(
    b: KernelBuilder,
    T: list[str],
    a_digit,
    load_subtrahend,
    borrow: str,
    u: str,
    y: str,
) -> None:
    """``T = A - X`` digit-wise; *borrow* holds the final borrow (0/1).

    ``a_digit(i)`` / ``load_subtrahend(i)`` return registers holding the
    i-th digit of the minuend/subtrahend (either resident registers or
    freshly loaded streaming temporaries).
    """
    for i in range(len(T)):
        a = a_digit(i)
        x = load_subtrahend(i)
        if i == 0:
            b.emit(f"sltu {borrow}, {a}, {x}")
            b.emit(f"sub {T[0]}, {a}, {x}")
        else:
            b.emit(f"sltu {y}, {a}, {borrow}")
            b.emit(f"sub {u}, {a}, {borrow}")
            b.emit(f"sltu {borrow}, {u}, {x}")
            b.emit(f"sub {T[i]}, {u}, {x}")
            b.emit(f"or {borrow}, {borrow}, {y}")


def _emit_add_with_carry(
    b: KernelBuilder,
    S: list[str],
    A: list[str],
    B: list[str],
    carry: str,
    y: str,
) -> None:
    """``S = A + B`` digit-wise with full carry propagation (no final
    carry-out: callers guarantee the sum fits, as ``2p < 2^(64*l)``)."""
    l = len(A)
    for i in range(l):
        if i == 0:
            b.emit(f"add {S[0]}, {A[0]}, {B[0]}")
            b.emit(f"sltu {carry}, {S[0]}, {B[0]}")
        else:
            b.emit(f"add {y}, {A[i]}, {B[i]}")
            b.emit(f"sltu {S[i]}, {y}, {B[i]}")  # S[i] as scratch carry
            b.emit(f"add {y}, {y}, {carry}")
            b.emit(f"sltu {carry}, {y}, {carry}")
            b.emit(f"or {carry}, {carry}, {S[i]}")
            b.emit(f"mv {S[i]}, {y}")


# ---------------------------------------------------------------------------
# Fast modulo-p reduction bodies (Algorithms 1 and 2)
# ---------------------------------------------------------------------------

def emit_fast_reduce_body(
    b: KernelBuilder,
    ctx: MontgomeryContext,
    *,
    swap_based: bool,
    rptr: str = "a0",
    aptr: str = "a1",
    in_regs: list[str] | None = None,
    pool: RegisterPool | None = None,
) -> None:
    """Reduce ``A in [0, 2p)`` to ``[0, p)`` (Algorithm 2 if
    *swap_based*, else Algorithm 1).

    The operand either comes from memory at *aptr* or, for fused
    kernels, is already in registers (*in_regs* + caller's *pool*).
    For long operands only ``T`` stays register-resident and the
    A digits are re-loaded on demand.
    """
    l = _check_full_radix(ctx)
    layout = ConstPoolLayout(l)
    own_pool = pool is None
    reserved = (rptr, aptr)
    if own_pool:
        pool = RegisterPool(reserved=reserved)
    assert pool is not None

    stream_a = in_regs is None and (2 * l + 7 > _available(reserved))
    if in_regs is None and not stream_a:
        A = pool.take_many(l, "a")
        for i in range(l):
            b.emit(f"ld {A[i]}, {8 * i}({aptr})")
    else:
        A = in_regs if in_regs is not None else []

    cb = pool.take("constbase")
    b.emit(f"li {cb}, {CONST_BASE}")
    T = pool.take_many(l, "t")
    borrow = pool.take("borrow")
    u = pool.take("u")
    y = pool.take("y")
    pdig = pool.take("pdig")
    areg = pool.take("areg") if stream_a else ""

    def load_p(i: int) -> str:
        b.emit(f"ld {pdig}, {layout.modulus_offset + 8 * i}({cb})")
        return pdig

    def a_digit(i: int) -> str:
        if not stream_a:
            return A[i]
        b.emit(f"ld {areg}, {8 * i}({aptr})")
        return areg

    b.comment("T = A - P with borrow chain")
    _emit_sub_with_borrow(b, T, a_digit, load_p, borrow, u, y)
    b.comment("M = 0 - SLTU(A, P)")
    b.emit(f"sub {borrow}, zero, {borrow}")  # mask M

    if swap_based:
        b.comment("Algorithm 2: R = T ^ (M & (A ^ T))")
        for i in range(l):
            b.emit(f"xor {y}, {a_digit(i)}, {T[i]}")
            b.emit(f"and {y}, {y}, {borrow}")
            b.emit(f"xor {y}, {T[i]}, {y}")
            b.emit(f"sd {y}, {8 * i}({rptr})")
    else:
        b.comment("Algorithm 1: R = T + (M & P) with carry chain")
        carry = u
        for i in range(l):
            p_reg = load_p(i)
            b.emit(f"and {y}, {p_reg}, {borrow}")
            if i == 0:
                b.emit(f"add {y}, {T[0]}, {y}")
                b.emit(f"sltu {carry}, {y}, {T[0]}")
            else:
                b.emit(f"add {y}, {T[i]}, {y}")
                b.emit(f"sltu {pdig}, {y}, {T[i]}")
                b.emit(f"add {y}, {y}, {carry}")
                b.emit(f"sltu {carry}, {y}, {carry}")
                b.emit(f"or {carry}, {carry}, {pdig}")
            b.emit(f"sd {y}, {8 * i}({rptr})")


def emit_fp_add_body(
    b: KernelBuilder,
    ctx: MontgomeryContext,
    *,
    rptr: str = "a0",
    aptr: str = "a1",
    bptr: str = "a2",
) -> None:
    """``R = (A + B) mod p`` — carried addition, then swap-based fast
    reduction (Sect. 3.1: swap-based wins for full radix on RISC-V).

    For long operands the sum is streamed to scratch memory and the
    fast reduction re-reads it (operands no longer fit the register
    file twice over)."""
    l = _check_full_radix(ctx)
    reserved = (rptr, aptr, bptr)
    pool = RegisterPool(reserved=reserved)

    if 2 * l + 5 <= _available(reserved):
        A = pool.take_many(l, "a")
        for i in range(l):
            b.emit(f"ld {A[i]}, {8 * i}({aptr})")
        B = pool.take_many(l, "b")
        for i in range(l):
            b.emit(f"ld {B[i]}, {8 * i}({bptr})")
        carry = pool.take("carry")
        y = pool.take("y")
        b.comment("S = A + B (sum < 2p fits the digit count)")
        _emit_add_with_carry(b, A, A, B, carry, y)
        pool.release_many(B)
        pool.release(carry)
        pool.release(y)
        emit_fast_reduce_body(b, ctx, swap_based=True, rptr=rptr,
                              in_regs=A, pool=pool)
        return

    from repro.kernels.layout import SCRATCH_ADDR

    sptr = pool.take("scratchptr")
    b.emit(f"li {sptr}, {SCRATCH_ADDR}")
    carry = pool.take("carry")
    y = pool.take("y")
    x1 = pool.take("x1")
    x2 = pool.take("x2")
    b.comment("S = A + B streamed to scratch (long-operand mode)")
    for i in range(l):
        b.emit(f"ld {x1}, {8 * i}({aptr})")
        b.emit(f"ld {x2}, {8 * i}({bptr})")
        b.emit(f"add {x1}, {x1}, {x2}")
        if i == 0:
            b.emit(f"sltu {carry}, {x1}, {x2}")
        else:
            b.emit(f"sltu {y}, {x1}, {x2}")
            b.emit(f"add {x1}, {x1}, {carry}")
            b.emit(f"sltu {carry}, {x1}, {carry}")
            b.emit(f"or {carry}, {carry}, {y}")
        b.emit(f"sd {x1}, {8 * i}({sptr})")
    emit_fast_reduce_body(b, ctx, swap_based=True, rptr=rptr,
                          aptr=sptr)


def emit_fp_sub_body(
    b: KernelBuilder,
    ctx: MontgomeryContext,
    *,
    rptr: str = "a0",
    aptr: str = "a1",
    bptr: str = "a2",
) -> None:
    """``R = (A - B) mod p`` — Algorithm 1 variant with ``T = A - B``
    and conditional add-back of ``P`` (Sect. 3.1)."""
    l = _check_full_radix(ctx)
    layout = ConstPoolLayout(l)
    reserved = (rptr, aptr, bptr)
    pool = RegisterPool(reserved=reserved)

    stream_a = 2 * l + 6 > _available(reserved)
    if not stream_a:
        A = pool.take_many(l, "a")
        for i in range(l):
            b.emit(f"ld {A[i]}, {8 * i}({aptr})")
    else:
        A = []

    T = pool.take_many(l, "t")
    borrow = pool.take("borrow")
    u = pool.take("u")
    y = pool.take("y")
    bdig = pool.take("bdig")
    areg = pool.take("areg") if stream_a else ""

    def load_b(i: int) -> str:
        b.emit(f"ld {bdig}, {8 * i}({bptr})")
        return bdig

    def a_digit(i: int) -> str:
        if not stream_a:
            return A[i]
        b.emit(f"ld {areg}, {8 * i}({aptr})")
        return areg

    b.comment("T = A - B with borrow chain")
    _emit_sub_with_borrow(b, T, a_digit, load_b, borrow, u, y)
    b.emit(f"sub {borrow}, zero, {borrow}")

    cb = bdig  # operand B fully consumed; reuse its register
    b.emit(f"li {cb}, {CONST_BASE}")
    pdig = areg if stream_a else pool.take("pdig")
    carry = u
    b.comment("R = T + (M & P) with carry chain")
    for i in range(l):
        b.emit(f"ld {pdig}, {layout.modulus_offset + 8 * i}({cb})")
        b.emit(f"and {y}, {pdig}, {borrow}")
        if i == 0:
            b.emit(f"add {y}, {T[0]}, {y}")
            b.emit(f"sltu {carry}, {y}, {T[0]}")
        else:
            b.emit(f"add {y}, {T[i]}, {y}")
            b.emit(f"sltu {pdig}, {y}, {T[i]}")
            b.emit(f"add {y}, {y}, {carry}")
            b.emit(f"sltu {carry}, {y}, {carry}")
            b.emit(f"or {carry}, {carry}, {pdig}")
        b.emit(f"sd {y}, {8 * i}({rptr})")


# ---------------------------------------------------------------------------
# Operand-scanning multiplication (E15 ablation)
# ---------------------------------------------------------------------------

def emit_int_mul_operand_scanning_body(
    b: KernelBuilder,
    ctx: MontgomeryContext,
    *,
    use_ise: bool,
    rptr: str = "a0",
    aptr: str = "a1",
    bptr: str = "a2",
) -> None:
    """Row-wise (operand-scanning) ``R = A * B``.

    The paper's Sect. 1 names both schoolbook techniques; its kernels
    use product scanning because the row-wise form must keep the
    partial result in *memory* (it re-reads and re-writes every result
    digit l times), which wastes the large RV64 register file.  This
    generator exists to measure that gap (experiment E15).
    """
    l = _check_full_radix(ctx)
    pool = RegisterPool(reserved=(rptr, aptr, bptr))
    B = pool.take_many(l, "b")
    for j in range(l):
        b.emit(f"ld {B[j]}, {8 * j}({bptr})")

    a_i = pool.take("a_i")
    lo = pool.take("lo")
    hi = pool.take("hi")
    carry = pool.take("carry")
    r_j = pool.take("r_j")
    t = pool.take("t")

    for i in range(l):
        b.comment(f"row {i}")
        b.emit(f"ld {a_i}, {8 * i}({aptr})")
        b.emit(f"mv {carry}, zero")
        for j in range(l):
            first_row = i == 0
            if use_ise:
                if first_row:
                    # r_ij is zero: fuse only the carry
                    b.emit(f"maddhu {hi}, {a_i}, {B[j]}, {carry}")
                    b.emit(f"maddlu {lo}, {a_i}, {B[j]}, {carry}")
                    b.emit(f"mv {carry}, {hi}")
                else:
                    b.emit(f"ld {r_j}, {8 * (i + j)}({rptr})")
                    b.emit(f"maddhu {hi}, {a_i}, {B[j]}, {r_j}")
                    b.emit(f"maddlu {lo}, {a_i}, {B[j]}, {r_j}")
                    b.emit(f"add {lo}, {lo}, {carry}")
                    b.emit(f"sltu {t}, {lo}, {carry}")
                    b.emit(f"add {carry}, {hi}, {t}")
            else:
                b.emit(f"mulhu {hi}, {a_i}, {B[j]}")
                b.emit(f"mul {lo}, {a_i}, {B[j]}")
                b.emit(f"add {lo}, {lo}, {carry}")
                b.emit(f"sltu {t}, {lo}, {carry}")
                b.emit(f"add {carry}, {hi}, {t}")
                if not first_row:
                    b.emit(f"ld {r_j}, {8 * (i + j)}({rptr})")
                    b.emit(f"add {lo}, {lo}, {r_j}")
                    b.emit(f"sltu {t}, {lo}, {r_j}")
                    b.emit(f"add {carry}, {carry}, {t}")
            b.emit(f"sd {lo}, {8 * (i + j)}({rptr})")
        b.emit(f"sd {carry}, {8 * (i + l)}({rptr})")
