"""Reduced-radix (57-bit limb) assembly kernel generators.

The radix-2^57 representation holds a 511-bit CSIDH-512 element in nine
limbs with seven headroom bits each.  The paper's reduced-radix code
exploits that headroom to *delay* carry propagation: intermediate limbs
may grow past 57 bits and are brought back to canonical form by a final
arithmetic-shift cascade (3 instructions per limb ISA-only, 2 with
``sraiadd``).

Accumulator conventions differ between the two flavours:

* *ISA-only* (Listing 2): ``(h || l)`` is a genuine 128-bit value
  (``value = l + (h << 64)``); the per-column realignment costs four
  shift instructions (the paper's "extra instructions to align the
  accumulator").
* *ISE-supported* (Listing 4): ``l`` accumulates 57-bit product slices
  and ``h`` the matching high slices (``value = l + (h << 57)``); the
  column change collapses to one ``sraiadd`` plus a zeroing move.

Squaring uses the doubled-limb trick ``2*a_i * a_j``: a doubled limb is
58 bits, which the *full 64-bit multiplier* of ``madd57lu``/``madd57hu``
(and of course ``mul``/``mulhu``) handles exactly — the multiplier
saturation problem the paper solves at the instruction-design level
(Sect. 3.2).  This is why reduced-radix squaring enjoys the largest
speed-ups in Table 4.
"""

from __future__ import annotations

from repro.core.ise import REDUCED_RADIX_BITS
from repro.core.macros import (
    carry_propagate_isa,
    carry_propagate_ise,
    mac_reduced_radix_isa,
    mac_reduced_radix_ise,
)
from repro.errors import KernelError
from repro.kernels.builder import (
    KERNEL_REGISTER_POOL,
    KernelBuilder,
    RegisterPool,
)
from repro.kernels.layout import CONST_BASE, ConstPoolLayout
from repro.mpi.montgomery import MontgomeryContext

W = REDUCED_RADIX_BITS


def _available(reserved: tuple[str, ...]) -> int:
    return len(KERNEL_REGISTER_POOL) - len(set(reserved))


def _check_reduced_radix(ctx: MontgomeryContext) -> int:
    if ctx.radix.bits != W:
        raise KernelError(
            f"reduced-radix generator got a {ctx.radix.bits}-bit radix"
        )
    return ctx.radix.limbs


def _zero(b: KernelBuilder, reg: str) -> None:
    b.emit(f"mv {reg}, zero")


def _emit_mask57(b: KernelBuilder, m: str) -> None:
    """Materialise the limb mask ``2^57 - 1`` in two instructions."""
    b.emit(f"addi {m}, zero, -1")
    b.emit(f"srli {m}, {m}, {64 - W}")


def _emit_mac(
    b: KernelBuilder,
    h: str, l: str,
    a: str, x: str,
    y: str, z: str,
    *,
    use_ise: bool,
) -> None:
    if use_ise:
        b.emit_all(mac_reduced_radix_ise(h, l, a, x))
    else:
        b.emit_all(mac_reduced_radix_isa(h, l, a, x, y, z))


def _emit_column_store_and_shift(
    b: KernelBuilder,
    h: str, l: str,
    m: str, y: str,
    offset: int | None,
    rptr: str,
    *,
    use_ise: bool,
    store: bool = True,
) -> None:
    """Finish a product-scanning column: emit the masked limb (unless
    *store* is false, e.g. reduction phase 1 where it is zero by
    construction) and realign the accumulator for the next column."""
    if store:
        b.emit(f"and {y}, {l}, {m}")
        b.emit(f"sd {y}, {offset}({rptr})")
    if use_ise:
        # value/2^57 = h + (l >> 57); l's slices are non-negative so the
        # arithmetic shift of sraiadd equals a logical one here
        b.emit(f"sraiadd {l}, {h}, {l}, {W}")
        _zero(b, h)
    else:
        # (h || l) >>= 57 at 128-bit granularity: h < 2^57 always holds
        # for <= 2^7 MACs per column, so no bits are lost
        b.emit(f"srli {l}, {l}, {W}")
        b.emit(f"slli {y}, {h}, {64 - W}")
        b.emit(f"or {l}, {l}, {y}")
        b.emit(f"srli {h}, {h}, {W}")


# ---------------------------------------------------------------------------
# Integer multiplication / squaring
# ---------------------------------------------------------------------------

def emit_int_mul_body(
    b: KernelBuilder,
    ctx: MontgomeryContext,
    *,
    use_ise: bool,
    rptr: str = "a0",
    aptr: str = "a1",
    bptr: str = "a2",
    square: bool = False,
) -> None:
    """Product-scanning ``R = A * B`` (2l limbs out), or ``A^2``.

    Squaring doubles the smaller-index limb once up front (9 ``slli``)
    and halves the cross-term MAC count.
    """
    l = _check_reduced_radix(ctx)
    reserved = (rptr, aptr, bptr)
    pool = RegisterPool(reserved=reserved)
    A = pool.take_many(l, "a")
    for i in range(l):
        b.emit(f"ld {A[i]}, {8 * i}({aptr})")

    # Long operands: the second operand (or the doubled-limb shadow
    # copy, for squaring) no longer fits alongside A — stream it.
    stream = 2 * l + 7 > _available(reserved)
    if square:
        if stream:
            D = []
            dreg = pool.take("dreg")
        else:
            D = pool.take_many(l, "dbl")
            for i in range(l):
                b.emit(f"slli {D[i]}, {A[i]}, 1")  # 58-bit doubled limbs
            dreg = ""
        B = A
        breg = ""
    else:
        D = []
        dreg = ""
        if stream:
            B = []
            breg = pool.take("breg")
        else:
            B = pool.take_many(l, "b")
            for i in range(l):
                b.emit(f"ld {B[i]}, {8 * i}({bptr})")
            breg = ""

    h = pool.take("acc_h")
    acc_l = pool.take("acc_l")
    y = pool.take("y")
    z = pool.take("z")
    m = pool.take("mask")
    _emit_mask57(b, m)
    _zero(b, h)
    _zero(b, acc_l)

    def doubled(i: int) -> str:
        if not stream:
            return D[i]
        b.emit(f"slli {dreg}, {A[i]}, 1")
        return dreg

    def b_digit(j: int) -> str:
        if not stream:
            return B[j]
        b.emit(f"ld {breg}, {8 * j}({bptr})")
        return breg

    for k in range(2 * l - 1):
        lo_i, hi_i = max(0, k - l + 1), min(k, l - 1)
        b.comment(f"column {k}")
        for i in range(lo_i, hi_i + 1):
            j = k - i
            if square:
                if i > j:
                    break
                if i == j:
                    _emit_mac(b, h, acc_l, A[i], A[i], y, z,
                              use_ise=use_ise)
                else:
                    _emit_mac(b, h, acc_l, doubled(i), A[j], y, z,
                              use_ise=use_ise)
            else:
                _emit_mac(b, h, acc_l, A[i], b_digit(j), y, z,
                          use_ise=use_ise)
        _emit_column_store_and_shift(b, h, acc_l, m, y, 8 * k, rptr,
                                     use_ise=use_ise)
    b.emit(f"sd {acc_l}, {8 * (2 * l - 1)}({rptr})")


# ---------------------------------------------------------------------------
# Montgomery (SPS) reduction
# ---------------------------------------------------------------------------

def emit_mont_redc_body(
    b: KernelBuilder,
    ctx: MontgomeryContext,
    *,
    use_ise: bool,
    rptr: str = "a0",
    tptr: str = "a1",
) -> None:
    """SPS Montgomery reduction: 2l limbs of ``T`` to l limbs in
    ``[0, 2p)`` (canonical 57-bit limbs)."""
    l = _check_reduced_radix(ctx)
    layout = ConstPoolLayout(l)
    reserved = (rptr, tptr)
    pool = RegisterPool(reserved=reserved)

    stream_p = 2 * l + 7 > _available(reserved)

    cb = pool.take("constbase")
    b.emit(f"li {cb}, {CONST_BASE}")
    if stream_p:
        P: list[str] = []
        preg = pool.take("preg")
    else:
        P = pool.take_many(l, "p")
        for i in range(l):
            b.emit(f"ld {P[i]}, {layout.modulus_offset + 8 * i}({cb})")
        preg = ""
    n0 = pool.take("n0")
    b.emit(f"ld {n0}, {layout.n0_offset}({cb})")
    if not stream_p:
        pool.release(cb)

    def p_digit(index: int) -> str:
        if not stream_p:
            return P[index]
        b.emit(f"ld {preg}, "
               f"{layout.modulus_offset + 8 * index}({cb})")
        return preg

    Q = pool.take_many(l, "q")
    h = pool.take("acc_h")
    acc_l = pool.take("acc_l")
    y = pool.take("y")
    z = pool.take("z")
    m = pool.take("mask")
    _emit_mask57(b, m)
    _zero(b, h)
    _zero(b, acc_l)

    for i in range(l):
        b.comment(f"reduction phase 1, column {i}")
        b.emit(f"ld {y}, {8 * i}({tptr})")
        if use_ise:
            b.emit(f"add {acc_l}, {acc_l}, {y}")  # headroom guarantees fit
        else:
            b.emit(f"add {acc_l}, {acc_l}, {y}")
            b.emit(f"sltu {y}, {acc_l}, {y}")
            b.emit(f"add {h}, {h}, {y}")
        for j in range(i):
            _emit_mac(b, h, acc_l, Q[j], p_digit(i - j), y, z,
                      use_ise=use_ise)
        b.emit(f"mul {y}, {acc_l}, {n0}")
        b.emit(f"and {Q[i]}, {y}, {m}")  # q_i = (acc * n0') mod 2^57
        _emit_mac(b, h, acc_l, Q[i], p_digit(0), y, z,
                  use_ise=use_ise)
        _emit_column_store_and_shift(b, h, acc_l, m, y, None, rptr,
                                     use_ise=use_ise, store=False)

    for i in range(l, 2 * l):
        b.comment(f"reduction phase 2, column {i}")
        b.emit(f"ld {y}, {8 * i}({tptr})")
        if use_ise:
            b.emit(f"add {acc_l}, {acc_l}, {y}")
        else:
            b.emit(f"add {acc_l}, {acc_l}, {y}")
            b.emit(f"sltu {y}, {acc_l}, {y}")
            b.emit(f"add {h}, {h}, {y}")
        for j in range(i - l + 1, l):
            _emit_mac(b, h, acc_l, Q[j], p_digit(i - j), y, z,
                      use_ise=use_ise)
        _emit_column_store_and_shift(b, h, acc_l, m, y, 8 * (i - l), rptr,
                                     use_ise=use_ise)


# ---------------------------------------------------------------------------
# Carry propagation cascades (canonicalisation of signed limb vectors)
# ---------------------------------------------------------------------------

def _emit_propagate(
    b: KernelBuilder,
    T: list[str],
    m: str,
    y: str,
    *,
    use_ise: bool,
) -> str:
    """Canonicalise signed limbs ``T`` by cascading arithmetic-shift
    carries upward; returns the register holding the final carry-out
    (0 or -1), which doubles as the selection mask."""
    l = len(T)
    for i in range(1, l):
        if use_ise:
            b.emit_all(carry_propagate_ise(T[i - 1], T[i], m))
        else:
            b.emit_all(carry_propagate_isa(T[i - 1], T[i], m, y))
    # final limb: extract carry, then mask
    b.emit(f"srai {y}, {T[l - 1]}, {W}")
    b.emit(f"and {T[l - 1]}, {T[l - 1]}, {m}")
    return y


def emit_fast_reduce_body(
    b: KernelBuilder,
    ctx: MontgomeryContext,
    *,
    use_ise: bool,
    swap_based: bool = True,
    rptr: str = "a0",
    aptr: str = "a1",
    in_regs: list[str] | None = None,
    pool: RegisterPool | None = None,
    canonical_input: bool | None = None,
) -> None:
    """Reduce canonical ``A in [0, 2p)`` to ``[0, p)``.

    The swap-based select (Algorithm 2) needs the minuend in canonical
    form; when the input comes from a delayed-carry computation pass
    ``swap_based=False`` to use the addition-based Algorithm 1 instead
    (the paper's choice for reduced-radix Fp-addition).
    """
    l = _check_reduced_radix(ctx)
    layout = ConstPoolLayout(l)
    own_pool = pool is None
    if own_pool:
        pool = RegisterPool(reserved=(rptr, aptr))
    assert pool is not None

    stream_a = in_regs is None and (2 * l + 7 > _available((rptr, aptr)))
    if in_regs is None and not stream_a:
        A = pool.take_many(l, "a")
        for i in range(l):
            b.emit(f"ld {A[i]}, {8 * i}({aptr})")
        canonical_input = True if canonical_input is None else \
            canonical_input
    elif in_regs is None:
        A = []
        canonical_input = True if canonical_input is None else \
            canonical_input
    else:
        A = in_regs
        canonical_input = bool(canonical_input)

    if swap_based and not canonical_input:
        raise KernelError(
            "swap-based fast reduction requires a canonical operand"
        )

    # The modulus limbs are loaded on demand (A, T and P together would
    # exceed the register file), keeping the constant-pool base resident.
    cb = pool.take("constbase")
    b.emit(f"li {cb}, {CONST_BASE}")
    pdig = pool.take("pdig")

    T = pool.take_many(l, "t")
    m = pool.take("mask")
    y = pool.take("y")
    _emit_mask57(b, m)

    areg = pool.take("areg") if stream_a else ""

    def a_digit(i: int) -> str:
        if not stream_a:
            return A[i]
        b.emit(f"ld {areg}, {8 * i}({aptr})")
        return areg

    b.comment("T = A - P, signed limbs")
    for i in range(l):
        b.emit(f"ld {pdig}, {layout.modulus_offset + 8 * i}({cb})")
        b.emit(f"sub {T[i]}, {a_digit(i)}, {pdig}")
    b.comment("canonicalise T; final carry is the mask M")
    mask_reg = _emit_propagate(b, T, m, y, use_ise=use_ise)

    if swap_based:
        b.comment("Algorithm 2 select: R = T ^ (M & (A ^ T))")
        for i in range(l):
            b.emit(f"xor {pdig}, {a_digit(i)}, {T[i]}")
            b.emit(f"and {pdig}, {pdig}, {mask_reg}")
            b.emit(f"xor {pdig}, {T[i]}, {pdig}")
            b.emit(f"sd {pdig}, {8 * i}({rptr})")
    else:
        b.comment("Algorithm 1 select: R = T + (M & P), then re-propagate")
        z = pool.take("z")
        b.emit(f"mv {z}, {mask_reg}")
        for i in range(l):
            b.emit(f"ld {pdig}, {layout.modulus_offset + 8 * i}({cb})")
            b.emit(f"and {y}, {pdig}, {z}")
            b.emit(f"add {T[i]}, {T[i]}, {y}")
        _emit_propagate(b, T, m, y, use_ise=use_ise)
        # final carry is always zero here: T + (M & P) lies in [0, p)
        for i in range(l):
            b.emit(f"sd {T[i]}, {8 * i}({rptr})")
        pool.release(z)
    pool.release(pdig)
    pool.release(cb)


def emit_fp_add_body(
    b: KernelBuilder,
    ctx: MontgomeryContext,
    *,
    use_ise: bool,
    rptr: str = "a0",
    aptr: str = "a1",
    bptr: str = "a2",
) -> None:
    """``R = (A + B) mod p`` via delayed-carry limb addition plus the
    addition-based reduction (the sum is non-canonical, so the
    swap-based variant is unusable — Sect. 3.1)."""
    l = _check_reduced_radix(ctx)
    layout = ConstPoolLayout(l)
    reserved = (rptr, aptr, bptr)
    pool = RegisterPool(reserved=reserved)

    A = pool.take_many(l, "a")
    for i in range(l):
        b.emit(f"ld {A[i]}, {8 * i}({aptr})")
    y = pool.take("y")
    b.comment("S = A + B limb-wise (delayed carries, 58-bit limbs)")
    for i in range(l):
        b.emit(f"ld {y}, {8 * i}({bptr})")
        b.emit(f"add {A[i]}, {A[i]}, {y}")

    cb = pool.take("constbase")
    b.emit(f"li {cb}, {CONST_BASE}")
    stream_p = 2 * l + 6 > _available(reserved)
    if stream_p:
        P: list[str] = []
        preg = pool.take("preg")
    else:
        P = pool.take_many(l, "p")
        for i in range(l):
            b.emit(f"ld {P[i]}, {layout.modulus_offset + 8 * i}({cb})")
        pool.release(cb)
        preg = ""

    def p_digit(index: int) -> str:
        if not stream_p:
            return P[index]
        b.emit(f"ld {preg}, "
               f"{layout.modulus_offset + 8 * index}({cb})")
        return preg

    m = pool.take("mask")
    _emit_mask57(b, m)
    b.comment("T = S - P, signed limbs")
    for i in range(l):
        b.emit(f"sub {A[i]}, {A[i]}, {p_digit(i)}")
    mask_reg = _emit_propagate(b, A, m, y, use_ise=use_ise)

    z = pool.take("z")
    b.emit(f"mv {z}, {mask_reg}")
    b.comment("R = T + (M & P), re-canonicalise")
    for i in range(l):
        b.emit(f"and {y}, {p_digit(i)}, {z}")
        b.emit(f"add {A[i]}, {A[i]}, {y}")
    _emit_propagate(b, A, m, y, use_ise=use_ise)
    for i in range(l):
        b.emit(f"sd {A[i]}, {8 * i}({rptr})")


def emit_fp_sub_body(
    b: KernelBuilder,
    ctx: MontgomeryContext,
    *,
    use_ise: bool,
    rptr: str = "a0",
    aptr: str = "a1",
    bptr: str = "a2",
) -> None:
    """``R = (A - B) mod p`` — signed limb subtraction, carry cascade,
    conditional add-back of ``P`` (Algorithm 1 variant)."""
    l = _check_reduced_radix(ctx)
    layout = ConstPoolLayout(l)
    reserved = (rptr, aptr, bptr)
    pool = RegisterPool(reserved=reserved)

    A = pool.take_many(l, "a")
    for i in range(l):
        b.emit(f"ld {A[i]}, {8 * i}({aptr})")
    y = pool.take("y")
    b.comment("T = A - B limb-wise, signed")
    for i in range(l):
        b.emit(f"ld {y}, {8 * i}({bptr})")
        b.emit(f"sub {A[i]}, {A[i]}, {y}")

    cb = pool.take("constbase")
    b.emit(f"li {cb}, {CONST_BASE}")
    stream_p = 2 * l + 6 > _available(reserved)
    if stream_p:
        P: list[str] = []
        preg = pool.take("preg")
    else:
        P = pool.take_many(l, "p")
        for i in range(l):
            b.emit(f"ld {P[i]}, {layout.modulus_offset + 8 * i}({cb})")
        pool.release(cb)
        preg = ""

    def p_digit(index: int) -> str:
        if not stream_p:
            return P[index]
        b.emit(f"ld {preg}, "
               f"{layout.modulus_offset + 8 * index}({cb})")
        return preg

    m = pool.take("mask")
    _emit_mask57(b, m)
    mask_reg = _emit_propagate(b, A, m, y, use_ise=use_ise)

    z = pool.take("z")
    b.emit(f"mv {z}, {mask_reg}")
    b.comment("R = T + (M & P), re-canonicalise")
    for i in range(l):
        b.emit(f"and {y}, {p_digit(i)}, {z}")
        b.emit(f"add {A[i]}, {A[i]}, {y}")
    _emit_propagate(b, A, m, y, use_ise=use_ise)
    for i in range(l):
        b.emit(f"sd {A[i]}, {8 * i}({rptr})")
