"""Kernel descriptors: assembled source + metadata + reference semantics.

A :class:`Kernel` couples one generated assembly routine with everything
needed to execute and verify it: the instruction set it requires, the
field context, the operand shapes, a golden-reference function, and a
seeded input sampler for randomised testing.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable

from repro.mpi.montgomery import MontgomeryContext
from repro.rv64.isa import InstructionSet

#: operation identifiers, in Table 4 row order
OP_INT_MUL = "int_mul"
OP_INT_SQR = "int_sqr"
OP_MONT_REDC = "mont_redc"
OP_FAST_REDUCE = "fast_reduce"
OP_FP_ADD = "fp_add"
OP_FP_SUB = "fp_sub"
OP_FP_MUL = "fp_mul"
OP_FP_SQR = "fp_sqr"
#: ablation-only variant (Algorithm 1 select instead of Algorithm 2)
OP_FAST_REDUCE_ADD = "fast_reduce_add"
#: ablation-only variant (row-wise instead of column-wise multiply)
OP_INT_MUL_OS = "int_mul_os"

TABLE4_OPERATIONS = (
    OP_INT_MUL,
    OP_INT_SQR,
    OP_MONT_REDC,
    OP_FAST_REDUCE,
    OP_FP_ADD,
    OP_FP_SUB,
    OP_FP_MUL,
    OP_FP_SQR,
)

VARIANT_FULL_ISA = "full.isa"
VARIANT_FULL_ISE = "full.ise"
VARIANT_REDUCED_ISA = "reduced.isa"
VARIANT_REDUCED_ISE = "reduced.ise"

ALL_VARIANTS = (
    VARIANT_FULL_ISA,
    VARIANT_FULL_ISE,
    VARIANT_REDUCED_ISA,
    VARIANT_REDUCED_ISE,
)


@dataclass(frozen=True)
class Kernel:
    """One generated assembly kernel, ready to assemble and run."""

    name: str                 # e.g. "fp_mul.reduced.ise"
    operation: str            # one of the OP_* identifiers
    variant: str              # one of the VARIANT_* identifiers
    source: str               # assembly text (ends with ret)
    isa: InstructionSet
    context: MontgomeryContext
    input_limbs: tuple[int, ...]   # limb count of each operand
    output_limbs: int
    reference: Callable[..., int]  # exact expected output value
    sampler: Callable[..., tuple[int, ...]]  # rng -> operand values
    static_counts: Counter = field(default_factory=Counter, compare=False)

    @property
    def uses_ise(self) -> bool:
        return self.variant.endswith(".ise")

    @property
    def radix_name(self) -> str:
        return self.variant.split(".")[0]

    def __str__(self) -> str:
        return f"Kernel({self.name}, {self.context.radix.name})"
