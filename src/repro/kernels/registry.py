"""Kernel registry: generate every Table-4 kernel for a field context.

:func:`build_kernel` produces a single kernel; :func:`build_all_kernels`
produces the full matrix used by the evaluation harness:

====================  ========================================
operation             variants
====================  ========================================
int_mul, int_sqr      full/reduced x isa/ise
mont_redc             full/reduced x isa/ise
fast_reduce           full/reduced x isa/ise  (swap-based)
fast_reduce_add       full/reduced x isa/ise  (E5 ablation)
int_mul_os            full x isa/ise          (E15 ablation)
fp_add, fp_sub        full/reduced x isa/ise
fp_mul, fp_sqr        full/reduced x isa/ise  (composites)
====================  ========================================

Generators switch automatically between register-resident and
operand-streaming code depending on the operand width (DESIGN.md E9).
"""

from __future__ import annotations

import threading
from functools import lru_cache

from repro import telemetry
from repro.core.ise import FULL_RADIX_ISA, REDUCED_RADIX_ISA
from repro.errors import KernelError
from repro.kernels import fullradix, reducedradix
from repro.kernels.builder import KernelBuilder
from repro.kernels.layout import SCRATCH_ADDR
from repro.kernels.runner import DEFAULT_CHECK_INTERVAL, KernelRunner
from repro.kernels.spec import (
    ALL_VARIANTS,
    Kernel,
    OP_FAST_REDUCE,
    OP_FAST_REDUCE_ADD,
    OP_INT_MUL_OS,
    OP_FP_ADD,
    OP_FP_MUL,
    OP_FP_SQR,
    OP_FP_SUB,
    OP_INT_MUL,
    OP_INT_SQR,
    OP_MONT_REDC,
)
from repro.mpi.montgomery import MontgomeryContext
from repro.mpi.representation import (
    full_radix_for,
    reduced_radix_for,
)
from repro.rv64.isa import BASE_ISA, InstructionSet
from repro.rv64.pipeline import PipelineConfig, ROCKET_CONFIG


def _isa_for(variant: str) -> InstructionSet:
    if variant.endswith(".isa"):
        return BASE_ISA
    if variant.startswith("full."):
        return FULL_RADIX_ISA
    return REDUCED_RADIX_ISA


def _module_for(variant: str):
    return fullradix if variant.startswith("full.") else reducedradix


# ---------------------------------------------------------------------------
# Reference semantics and samplers
# ---------------------------------------------------------------------------

def _make_reference(operation: str, ctx: MontgomeryContext):
    p = ctx.modulus
    radix = ctx.radix

    if operation in (OP_INT_MUL, OP_INT_MUL_OS):
        return lambda a, b: a * b
    if operation == OP_INT_SQR:
        return lambda a: a * a
    if operation == OP_MONT_REDC:
        return lambda t: radix.from_limbs(
            ctx.sps_reduce(radix.to_limbs(t, limbs=2 * radix.limbs)).limbs
        )
    if operation in (OP_FAST_REDUCE, OP_FAST_REDUCE_ADD):
        return lambda a: a % p
    if operation == OP_FP_ADD:
        return lambda a, b: (a + b) % p
    if operation == OP_FP_SUB:
        return lambda a, b: (a - b) % p
    if operation == OP_FP_MUL:
        return lambda a, b: ctx.montgomery_multiply(a, b)
    if operation == OP_FP_SQR:
        return lambda a: ctx.montgomery_multiply(a, a)
    raise KernelError(f"unknown operation {operation!r}")


def _make_sampler(operation: str, ctx: MontgomeryContext):
    p = ctx.modulus
    limbs = ctx.radix.limbs
    capacity = 1 << ctx.radix.capacity_bits

    if operation in (OP_INT_MUL, OP_INT_MUL_OS, OP_FP_ADD,
                     OP_FP_SUB, OP_FP_MUL):
        return lambda rng: (rng.randrange(p), rng.randrange(p))
    if operation in (OP_INT_SQR, OP_FP_SQR):
        return lambda rng: (rng.randrange(p),)
    if operation == OP_MONT_REDC:
        # any T < p * R reduces correctly; products are the real workload
        return lambda rng: (rng.randrange(p) * rng.randrange(p),)
    if operation in (OP_FAST_REDUCE, OP_FAST_REDUCE_ADD):
        return lambda rng: (rng.randrange(min(2 * p, capacity)),)
    raise KernelError(f"unknown operation {operation!r}")


def _shapes(operation: str, limbs: int) -> tuple[tuple[int, ...], int]:
    """(input limb counts, output limb count) per operation."""
    table = {
        OP_INT_MUL: ((limbs, limbs), 2 * limbs),
        OP_INT_MUL_OS: ((limbs, limbs), 2 * limbs),
        OP_INT_SQR: ((limbs,), 2 * limbs),
        OP_MONT_REDC: ((2 * limbs,), limbs),
        OP_FAST_REDUCE: ((limbs,), limbs),
        OP_FAST_REDUCE_ADD: ((limbs,), limbs),
        OP_FP_ADD: ((limbs, limbs), limbs),
        OP_FP_SUB: ((limbs, limbs), limbs),
        OP_FP_MUL: ((limbs, limbs), limbs),
        OP_FP_SQR: ((limbs,), limbs),
    }
    return table[operation]


# ---------------------------------------------------------------------------
# Source generation
# ---------------------------------------------------------------------------

def _emit_operation(
    b: KernelBuilder,
    operation: str,
    ctx: MontgomeryContext,
    variant: str,
) -> None:
    module = _module_for(variant)
    use_ise = variant.endswith(".ise")
    limbs = ctx.radix.limbs

    if operation == OP_INT_MUL:
        module.emit_int_mul_body(b, ctx, use_ise=use_ise)
    elif operation == OP_INT_MUL_OS:
        if not variant.startswith("full."):
            raise KernelError(
                "operand scanning is generated for full radix only")
        fullradix.emit_int_mul_operand_scanning_body(
            b, ctx, use_ise=use_ise)
    elif operation == OP_INT_SQR:
        module.emit_int_mul_body(b, ctx, use_ise=use_ise, square=True,
                                 bptr="a1")
    elif operation == OP_MONT_REDC:
        module.emit_mont_redc_body(b, ctx, use_ise=use_ise)
    elif operation == OP_FAST_REDUCE:
        if variant.startswith("full."):
            module.emit_fast_reduce_body(b, ctx, swap_based=True)
        else:
            module.emit_fast_reduce_body(b, ctx, use_ise=use_ise,
                                         swap_based=True)
    elif operation == OP_FAST_REDUCE_ADD:
        if variant.startswith("full."):
            module.emit_fast_reduce_body(b, ctx, swap_based=False)
        else:
            module.emit_fast_reduce_body(b, ctx, use_ise=use_ise,
                                         swap_based=False)
    elif operation == OP_FP_ADD:
        if variant.startswith("full."):
            module.emit_fp_add_body(b, ctx)
        else:
            module.emit_fp_add_body(b, ctx, use_ise=use_ise)
    elif operation == OP_FP_SUB:
        if variant.startswith("full."):
            module.emit_fp_sub_body(b, ctx)
        else:
            module.emit_fp_sub_body(b, ctx, use_ise=use_ise)
    elif operation in (OP_FP_MUL, OP_FP_SQR):
        _emit_fp_mul_composite(b, ctx, variant,
                               square=(operation == OP_FP_SQR),
                               limbs=limbs)
    else:
        raise KernelError(f"unknown operation {operation!r}")


def _emit_fp_mul_composite(
    b: KernelBuilder,
    ctx: MontgomeryContext,
    variant: str,
    *,
    square: bool,
    limbs: int,
) -> None:
    """Fp-multiplication as the paper composes it: integer product ->
    SPS Montgomery reduction -> fast modulo-p reduction (Table 4's
    Fp-mul row is, to within call overhead, the sum of those rows)."""
    module = _module_for(variant)
    use_ise = variant.endswith(".ise")
    t_addr = SCRATCH_ADDR                       # 2l-limb product
    u_addr = SCRATCH_ADDR + 16 * limbs + 64    # l-limb reduced value

    b.comment("phase 1: T = A * B (product scanning)")
    b.emit(f"li a3, {t_addr}")
    module.emit_int_mul_body(b, ctx, use_ise=use_ise, rptr="a3",
                             aptr="a1", bptr="a1" if square else "a2",
                             square=square)
    b.comment("phase 2: U = T * R^-1 mod p  (SPS Montgomery reduction)")
    b.emit(f"li a4, {u_addr}")
    module.emit_mont_redc_body(b, ctx, use_ise=use_ise, rptr="a4",
                               tptr="a3")
    b.comment("phase 3: R = U fully reduced to [0, p)")
    if variant.startswith("full."):
        module.emit_fast_reduce_body(b, ctx, swap_based=True,
                                     rptr="a0", aptr="a4")
    else:
        module.emit_fast_reduce_body(b, ctx, use_ise=use_ise,
                                     swap_based=True, rptr="a0",
                                     aptr="a4")


def build_kernel(
    operation: str,
    variant: str,
    ctx: MontgomeryContext,
) -> Kernel:
    """Generate one kernel (assembly source + metadata)."""
    if variant not in ALL_VARIANTS:
        raise KernelError(f"unknown variant {variant!r}")
    name = f"{operation}.{variant}"
    b = KernelBuilder(name)
    _emit_operation(b, operation, ctx, variant)
    b.ret()
    inputs, outputs = _shapes(operation, ctx.radix.limbs)
    return Kernel(
        name=name,
        operation=operation,
        variant=variant,
        source=b.build(),
        isa=_isa_for(variant),
        context=ctx,
        input_limbs=inputs,
        output_limbs=outputs,
        reference=_make_reference(operation, ctx),
        sampler=_make_sampler(operation, ctx),
        static_counts=b.static_counts,
    )


def make_contexts(
    modulus: int,
) -> tuple[MontgomeryContext, MontgomeryContext]:
    """(full-radix, reduced-radix) Montgomery contexts for *modulus*."""
    bits = modulus.bit_length()
    full = MontgomeryContext(modulus, full_radix_for(bits + 1))
    reduced = MontgomeryContext(modulus, reduced_radix_for(bits + 2))
    return full, reduced


_GENERATED_OPERATIONS = (
    OP_INT_MUL, OP_INT_SQR, OP_MONT_REDC, OP_FAST_REDUCE,
    OP_FAST_REDUCE_ADD, OP_FP_ADD, OP_FP_SUB, OP_FP_MUL, OP_FP_SQR,
)

#: operations generated only for the full-radix variants
_FULL_ONLY_OPERATIONS = (OP_INT_MUL_OS,)


def build_all_kernels(modulus: int) -> dict[str, Kernel]:
    """The full kernel matrix for *modulus*, keyed by kernel name."""
    full_ctx, reduced_ctx = make_contexts(modulus)
    kernels: dict[str, Kernel] = {}
    for operation in _GENERATED_OPERATIONS:
        for variant in ALL_VARIANTS:
            ctx = full_ctx if variant.startswith("full.") else reduced_ctx
            kernel = build_kernel(operation, variant, ctx)
            kernels[kernel.name] = kernel
    for operation in _FULL_ONLY_OPERATIONS:
        for variant in ("full.isa", "full.ise"):
            kernel = build_kernel(operation, variant, full_ctx)
            kernels[kernel.name] = kernel
    return kernels


@lru_cache(maxsize=4)
def cached_kernels(modulus: int) -> dict[str, Kernel]:
    """Memoised :func:`build_all_kernels` (generation is pure)."""
    return build_all_kernels(modulus)


_RUNNER_POOL: dict[
    tuple[int, str, PipelineConfig, bool, str, str], KernelRunner
] = {}

#: Serialises pool bookkeeping (lookup, insert, evict, clear) so the
#: service layer's concurrent sessions cannot corrupt the dict or
#: double-count pool telemetry.  Builds happen *outside* the lock (a
#: lost build race is resolved by keeping the first-inserted runner).
_POOL_LOCK = threading.RLock()


def cached_runner(
    modulus: int,
    name: str,
    pipeline_config: PipelineConfig = ROCKET_CONFIG,
    *,
    checked: bool = False,
    check_interval: int | None = None,
    engine: str = "interpreter",
    scope: str = "",
) -> KernelRunner:
    """Pooled :class:`KernelRunner` for one kernel of *modulus*.

    Assembling a kernel and compiling its replay trace are pure,
    per-kernel costs; pooling runners lets every
    :class:`~repro.field.simulated.SimulatedFieldContext` (and any other
    repeat executor) share one machine per kernel instead of paying
    assembly again.  Runs are self-contained (reset, plant operands,
    execute, read result), so interleaved use at run granularity is safe
    within one thread.

    **Concurrency.**  Pool bookkeeping is thread-safe: lookups, inserts
    and evictions are serialised on a module lock, and a racing double
    build of the same key resolves to the first runner inserted (the
    loser is discarded, both callers observe the same object).  The
    *runner itself* is not: a :class:`KernelRunner` owns one simulator
    machine whose memory image every run rewrites, so two threads must
    never share a live runner.  Concurrent executors partition the pool
    with ``scope`` — a free-form confinement tag (the service layer
    uses ``"<tenant>/<lane>"`` per session lane, see
    ``docs/SERVICE.md``) that is part of the pool key, giving each
    tenant lane its own machines while still amortising assembly
    *within* the lane.

    ``checked`` runners (sampled reference cross-validation, see
    ``docs/ROBUSTNESS.md``) are pooled separately from plain ones, so a
    hardened context never taxes — or is taxed by — an unchecked one
    sharing the same kernel.  ``check_interval`` re-tunes the sampling
    interval of the pooled checked runner (last caller wins).

    ``engine`` selects the runner's default execution tier and is part
    of the pool key, so a jit-tier context (whose runner eagerly
    compiles its trace to a Python function) never shares a machine
    with an interpreter- or replay-tier one; eviction and rebuild stay
    per-tier.

    Pool traffic is observable: telemetry counts hits and misses
    (``runner_pool_hits_total`` / ``runner_pool_misses_total``) and
    tracks the pool size, so a workload that keeps re-assembling
    kernels shows up immediately in ``repro profile`` output.
    """
    key = (modulus, name, pipeline_config, checked, engine, scope)
    with _POOL_LOCK:
        runner = _RUNNER_POOL.get(key)
        if runner is not None:
            if checked and check_interval is not None:
                runner.enable_checked(check_interval)
            telemetry.record_pool_access(True, len(_RUNNER_POOL))
            return runner
    kernel = cached_kernels(modulus).get(name)
    if kernel is None:
        raise KernelError(
            f"no kernel {name!r} generated for modulus {modulus:#x}"
        )
    runner = KernelRunner(kernel, pipeline_config=pipeline_config,
                          engine=engine)
    if checked:
        runner.enable_checked(
            check_interval if check_interval is not None
            else DEFAULT_CHECK_INTERVAL
        )
    with _POOL_LOCK:
        winner = _RUNNER_POOL.get(key)
        if winner is not None:
            # lost a build race: adopt the pooled runner so every
            # caller for this key observes the same object
            if checked and check_interval is not None:
                winner.enable_checked(check_interval)
            telemetry.record_pool_access(True, len(_RUNNER_POOL))
            return winner
        _RUNNER_POOL[key] = runner
        telemetry.record_pool_access(False, len(_RUNNER_POOL))
    return runner


def evict_runner(
    modulus: int,
    name: str,
    pipeline_config: PipelineConfig = ROCKET_CONFIG,
    *,
    checked: bool = False,
    engine: str = "interpreter",
    scope: str = "",
) -> bool:
    """Drop one pooled runner; returns whether it was pooled.

    The recovery primitive of the hardened execution layer: a runner
    whose machine state (memory image, const pool, replay cache,
    compiled jit functions) is suspected of corruption is evicted so
    the next :func:`cached_runner` call rebuilds it from scratch —
    re-assembly from the pristine kernel source is the trust anchor.
    """
    with _POOL_LOCK:
        runner = _RUNNER_POOL.pop(
            (modulus, name, pipeline_config, checked, engine, scope),
            None)
    if runner is None:
        return False
    telemetry.record_runner_evicted(name)
    return True


def clear_runner_pool(scope: str | None = None) -> None:
    """Drop pooled runners (tests and memory-pressure hook).

    With *scope* only that confinement tag's runners are dropped —
    the service layer's per-tenant-lane teardown; ``None`` clears
    everything.
    """
    with _POOL_LOCK:
        if scope is None:
            _RUNNER_POOL.clear()
            return
        for key in [k for k in _RUNNER_POOL if k[5] == scope]:
            del _RUNNER_POOL[key]
