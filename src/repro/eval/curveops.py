"""Curve-arithmetic-layer cost analysis (between Table 4 and the
group-action row).

The paper jumps from field-operation cycles straight to the full group
action.  This module fills in the intermediate layer analytically:
x-only curve operations have fixed field-operation recipes

* xDBL  = 4M + 2S + 4A      (doubling)
* xADD  = 4M + 2S + 6A      (differential addition)
* ladder step = xDBL + xADD (one scalar bit)
* l-isogeny ~ (4M + 2A) * d kernel multiples + evaluation
  (see repro.csidh.isogeny for the exact flow)

so each inherits a per-variant cycle cost from the measured Table 4 —
and the instrumented per-phase breakdown (repro.csidh.breakdown) can be
cross-checked against these recipes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.table4 import Table4
from repro.field.counters import OpCounter
from repro.kernels.spec import ALL_VARIANTS

#: field-operation recipes of the x-only primitives (M, S, add+sub)
CURVE_OP_RECIPES: dict[str, OpCounter] = {
    "xDBL": OpCounter(mul=4, sqr=2, add=2, sub=2),
    "xADD": OpCounter(mul=4, sqr=2, add=3, sub=3),
    "ladder_step": OpCounter(mul=8, sqr=4, add=5, sub=5),
}


@dataclass(frozen=True)
class CurveOpCosts:
    """Cycle cost of each curve primitive for every variant."""

    cycles: dict[str, dict[str, int]]  # op -> variant -> cycles

    def ladder_cost(self, variant: str, bits: int) -> int:
        """Cost of a *bits*-bit Montgomery ladder."""
        return self.cycles["ladder_step"][variant] * bits

    def render(self) -> str:
        header = (f"{'curve op':14s}"
                  + "".join(f"{v:>14s}" for v in ALL_VARIANTS))
        lines = [header, "-" * len(header)]
        for op in CURVE_OP_RECIPES:
            row = "".join(f"{self.cycles[op][v]:>14d}"
                          for v in ALL_VARIANTS)
            lines.append(f"{op:14s}{row}")
        return "\n".join(lines)


def curve_op_costs(table: Table4) -> CurveOpCosts:
    """Derive curve-primitive cycle costs from measured field costs."""
    cycles: dict[str, dict[str, int]] = {}
    for op, recipe in CURVE_OP_RECIPES.items():
        cycles[op] = {
            variant: recipe.cycles(table.op_costs(variant))
            for variant in ALL_VARIANTS
        }
    return CurveOpCosts(cycles)


def verify_recipes_against_implementation(modulus: int) -> bool:
    """Cross-check the static recipes against the instrumented curve
    code: run xDBL/xADD with a counting field and compare."""
    from repro.csidh.montgomery import Curve, XPoint, xadd, xdbl
    from repro.field.counters import CountingScope
    from repro.field.fp import FieldContext

    field = FieldContext(modulus)
    curve = Curve.from_affine(field, 0)
    point = XPoint(9, 1)
    double = xdbl(field, point, curve)

    with CountingScope(field.counter) as scope:
        xdbl(field, point, curve)
    recipe = CURVE_OP_RECIPES["xDBL"]
    if (scope.delta.mul, scope.delta.sqr) != (recipe.mul, recipe.sqr):
        return False
    if scope.delta.add + scope.delta.sub != recipe.add + recipe.sub:
        return False

    with CountingScope(field.counter) as scope:
        xadd(field, double, point, point)
    recipe = CURVE_OP_RECIPES["xADD"]
    if (scope.delta.mul, scope.delta.sqr) != (recipe.mul, recipe.sqr):
        return False
    return scope.delta.add + scope.delta.sub == recipe.add + recipe.sub
