"""One-shot reproduction report: every experiment, rendered as markdown.

:func:`generate_report` runs the whole evaluation (Tables 3 and 4, the
group-action composition, the listing counts, the critical-path check)
and renders a self-contained markdown document — the programmatic
counterpart of EXPERIMENTS.md.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.macros import (
    carry_propagate_isa,
    carry_propagate_ise,
    mac_full_radix_isa,
    mac_full_radix_ise,
    mac_reduced_radix_isa,
    mac_reduced_radix_ise,
)
from repro.csidh.opcount import average_group_action_profile
from repro.csidh.parameters import CsidhParameters, csidh_512
from repro.eval.groupaction import GroupActionResult, compose_group_action
from repro.eval.paperdata import (
    PAPER_GROUP_ACTION_SPEEDUP,
    PAPER_TABLE3,
    PAPER_TABLE4,
    TABLE4_ROW_LABELS,
)
from repro.eval.table3 import measure_table3, overhead_summary
from repro.eval.table4 import Table4, measure_table4
from repro.hw.timing import critical_path_report, xmul_extends_critical_path
from repro.kernels.spec import ALL_VARIANTS, TABLE4_OPERATIONS
from repro.rv64.pipeline import PipelineConfig, ROCKET_CONFIG


@dataclass(frozen=True)
class ReproductionReport:
    """All evaluation artifacts, pre-rendered."""

    table3_markdown: str
    table4_markdown: str
    group_action_markdown: str
    listings_markdown: str
    timing_markdown: str
    table4: Table4
    group_action: GroupActionResult

    def to_markdown(self) -> str:
        sections = [
            "# Reproduction report",
            "## Table 3 — hardware cost", self.table3_markdown,
            "## Table 4 — operation cycles", self.table4_markdown,
            "## Group action", self.group_action_markdown,
            "## Listings (instruction counts)", self.listings_markdown,
            "## Critical path", self.timing_markdown,
        ]
        return "\n\n".join(sections) + "\n"


def _markdown_table(header: list[str], rows: list[list[str]]) -> str:
    lines = ["| " + " | ".join(header) + " |",
             "|" + "---|" * len(header)]
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def _render_table3() -> str:
    rows = []
    for row in measure_table3():
        paper = PAPER_TABLE3[row.key]
        got = row.tuple
        rows.append([
            row.label,
            f"{got[0]} / {paper[0]}",
            f"{got[1]} / {paper[1]}",
            f"{got[2]} / {paper[2]}",
            f"{got[3]} / {paper[3]}",
        ])
    table = _markdown_table(
        ["component", "LUTs (ours/paper)", "Regs", "DSPs", "CMOS GE"],
        rows,
    )
    pct = overhead_summary()
    notes = (
        f"\nOverheads: full-radix +{pct['full']['luts']:.1f}% LUTs / "
        f"+{pct['full']['regs']:.1f}% Regs; reduced-radix "
        f"+{pct['reduced']['luts']:.1f}% LUTs / "
        f"+{pct['reduced']['regs']:.1f}% Regs."
    )
    return table + notes


def _render_table4(table: Table4) -> str:
    rows = []
    for operation in TABLE4_OPERATIONS:
        cells = [TABLE4_ROW_LABELS[operation]]
        for variant in ALL_VARIANTS:
            ours = table.cycles[operation][variant]
            paper = PAPER_TABLE4[operation][variant]
            cells.append(f"{ours} / {paper}")
        rows.append(cells)
    return _markdown_table(
        ["operation (ours/paper)", "full ISA", "full ISE",
         "reduced ISA", "reduced ISE"],
        rows,
    )


def _render_group_action(result: GroupActionResult) -> str:
    rows = []
    for variant in ALL_VARIANTS:
        rows.append([
            variant,
            f"{result.cycles[variant]:,.0f}",
            f"{result.speedup[variant]:.2f}x",
            f"{PAPER_GROUP_ACTION_SPEEDUP[variant]:.2f}x",
        ])
    ops = result.ops
    table = _markdown_table(
        ["variant", "cycles", "speedup", "paper"], rows)
    return table + (
        f"\nPer-action field work: {ops.mul} mul, {ops.sqr} sqr, "
        f"{ops.add} add, {ops.sub} sub."
    )


def _render_listings() -> str:
    rows = [
        ["full-radix MAC",
         str(len(mac_full_radix_isa("a", "b", "c", "d", "e", "f",
                                    "g"))),
         str(len(mac_full_radix_ise("a", "b", "c", "d", "e", "f"))),
         "8 -> 4"],
        ["reduced-radix MAC",
         str(len(mac_reduced_radix_isa("a", "b", "c", "d", "e", "f"))),
         str(len(mac_reduced_radix_ise("a", "b", "c", "d"))),
         "6 -> 2"],
        ["carry propagation",
         str(len(carry_propagate_isa("a", "b", "c", "d"))),
         str(len(carry_propagate_ise("a", "b", "c"))),
         "3 -> 2"],
    ]
    return _markdown_table(
        ["sequence", "ISA-only", "ISE", "paper"], rows)


def _render_timing() -> str:
    delays = critical_path_report()
    rows = [[name, f"{ns:.1f}"] for name, ns in delays.items()]
    verdict = ("XMUL does NOT extend the critical path"
               if not xmul_extends_critical_path()
               else "WARNING: XMUL extends the critical path")
    return _markdown_table(["stage", "delay (ns)"], rows) + \
        f"\n{verdict} (budget 20 ns @ 50 MHz)."


def generate_report(
    *,
    params: CsidhParameters | None = None,
    pipeline_config: PipelineConfig = ROCKET_CONFIG,
    keys: int = 2,
    seed: int = 7,
) -> ReproductionReport:
    """Run the full evaluation and render every section."""
    params = params if params is not None else csidh_512()
    table = measure_table4(params.p, pipeline_config=pipeline_config)
    profile = average_group_action_profile(params, keys=keys, seed=seed)
    result = compose_group_action(table, profile)
    return ReproductionReport(
        table3_markdown=_render_table3(),
        table4_markdown=_render_table4(table),
        group_action_markdown=_render_group_action(result),
        listings_markdown=_render_listings(),
        timing_markdown=_render_timing(),
        table4=table,
        group_action=result,
    )
