"""Evaluation harness: regenerate every table of the paper."""

from repro.eval.curveops import (
    CURVE_OP_RECIPES,
    CurveOpCosts,
    curve_op_costs,
    verify_recipes_against_implementation,
)
from repro.eval.groupaction import (
    GroupActionResult,
    compose_group_action,
    evaluate_group_action,
)
from repro.eval.paperdata import (
    PAPER_GROUP_ACTION_CYCLES,
    PAPER_GROUP_ACTION_SPEEDUP,
    PAPER_TABLE3,
    PAPER_TABLE4,
    TABLE4_ROW_LABELS,
)
from repro.eval.table3 import (
    Table3Row,
    measure_table3,
    model_matches_paper,
    overhead_summary,
    render_table3,
)
from repro.eval.report import ReproductionReport, generate_report
from repro.eval.table4 import Table4, measure_table4, render_table4

__all__ = [
    "CURVE_OP_RECIPES",
    "CurveOpCosts",
    "curve_op_costs",
    "verify_recipes_against_implementation",
    "ReproductionReport",
    "generate_report",
    "GroupActionResult",
    "compose_group_action",
    "evaluate_group_action",
    "PAPER_GROUP_ACTION_CYCLES",
    "PAPER_GROUP_ACTION_SPEEDUP",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "TABLE4_ROW_LABELS",
    "Table3Row",
    "measure_table3",
    "model_matches_paper",
    "overhead_summary",
    "render_table3",
    "Table4",
    "measure_table4",
    "render_table4",
]
