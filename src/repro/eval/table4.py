"""Regeneration of Table 4: per-operation cycle counts, four variants.

Every cell is produced by assembling the corresponding generated kernel,
executing it on the RV64 simulator under the Rocket timing model, and
reading off the cycle count.  The kernels are straight-line constant-
time code, so the count is input-independent; a verification pass with
random operands guards the functional result anyway.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro import telemetry
from repro.eval.paperdata import PAPER_TABLE4, TABLE4_ROW_LABELS
from repro.field.counters import OpCosts
from repro.kernels.registry import cached_kernels
from repro.kernels.runner import KernelRunner
from repro.kernels.spec import ALL_VARIANTS, TABLE4_OPERATIONS
from repro.rv64.pipeline import PipelineConfig, ROCKET_CONFIG


@dataclass
class Table4:
    """Measured cycles: ``cycles[operation][variant]``."""

    modulus: int
    cycles: dict[str, dict[str, int]] = field(default_factory=dict)

    def row(self, operation: str) -> dict[str, int]:
        return self.cycles[operation]

    def op_costs(self, variant: str) -> OpCosts:
        """Field-operation costs of one variant (feeds the group-action
        composition)."""
        return OpCosts(
            fp_mul=self.cycles["fp_mul"][variant],
            fp_sqr=self.cycles["fp_sqr"][variant],
            fp_add=self.cycles["fp_add"][variant],
            fp_sub=self.cycles["fp_sub"][variant],
            label=variant,
        )


def measure_table4(
    modulus: int,
    *,
    pipeline_config: PipelineConfig = ROCKET_CONFIG,
    verify_samples: int = 1,
    seed: int = 2024,
    engine: str | None = None,
) -> Table4:
    """Measure every Table 4 cell on the simulator.

    *engine* selects the execution tier (``None`` = the runner
    default).  The verification samples go through
    :meth:`KernelRunner.run_batch`, so throughput-oriented tiers
    amortise their per-run setup across the whole sample set — the
    cycle counts are engine-independent either way (the differential
    suite proves it)."""
    kernels = cached_kernels(modulus)
    rng = random.Random(seed)
    table = Table4(modulus=modulus)
    with telemetry.span("table4"):
        for operation in TABLE4_OPERATIONS:
            row: dict[str, int] = {}
            for variant in ALL_VARIANTS:
                kernel = kernels[f"{operation}.{variant}"]
                runner = KernelRunner(
                    kernel, pipeline_config=pipeline_config,
                    engine=engine)
                with telemetry.span("measure", operation=operation,
                                    variant=variant):
                    samples = [kernel.sampler(rng)
                               for _ in range(max(verify_samples, 1))]
                    runs = runner.run_batch(samples)
                    cycles = runs[-1].cycles
                row[variant] = cycles
            table.cycles[operation] = row
    return table


def render_table4(table: Table4, *, include_paper: bool = True) -> str:
    """Plain-text rendering mirroring the paper's row/column layout."""
    header = (
        f"{'Operation':26s}"
        f"{'full/ISA':>10s}{'full/ISE':>10s}"
        f"{'red/ISA':>10s}{'red/ISE':>10s}"
    )
    lines = [header, "-" * len(header)]
    for operation in TABLE4_OPERATIONS:
        label = TABLE4_ROW_LABELS[operation]
        row = table.cycles[operation]
        cells = "".join(f"{row[v]:>10d}" for v in ALL_VARIANTS)
        lines.append(f"{label:26s}{cells}")
        if include_paper:
            paper = PAPER_TABLE4[operation]
            cells = "".join(f"{paper[v]:>10d}" for v in ALL_VARIANTS)
            lines.append(f"{'  (paper)':26s}{cells}")
    return "\n".join(lines)
