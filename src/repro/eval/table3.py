"""Regeneration of Table 3: hardware cost of the base and extended
cores, from the structural area model."""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.paperdata import PAPER_TABLE3
from repro.hw.components import AreaCost
from repro.hw.core_model import BASE_CORE, CoreModel
from repro.hw.xmul import FULL_RADIX_CORE, REDUCED_RADIX_CORE


@dataclass(frozen=True)
class Table3Row:
    key: str
    label: str
    area: AreaCost

    @property
    def tuple(self) -> tuple[int, int, int, int]:
        a = self.area
        return (round(a.luts), round(a.regs), round(a.dsps),
                round(a.gates))


def measure_table3() -> list[Table3Row]:
    """The three cores of Table 3 from the area model."""
    rows = []
    for key, core in (
        ("base", BASE_CORE),
        ("full", FULL_RADIX_CORE),
        ("reduced", REDUCED_RADIX_CORE),
    ):
        rows.append(Table3Row(key, core.name, core.total_area))
    return rows


def overhead_summary() -> dict[str, dict[str, float]]:
    """Relative overheads of the two extended cores (the ~10% claim)."""
    return {
        "full": FULL_RADIX_CORE.overhead_percent(),
        "reduced": REDUCED_RADIX_CORE.overhead_percent(),
    }


def render_table3(*, include_paper: bool = True) -> str:
    header = (
        f"{'Components':34s}{'LUTs':>7s}{'Regs':>7s}"
        f"{'DSPs':>6s}{'CMOS':>9s}"
    )
    lines = [header, "-" * len(header)]
    for row in measure_table3():
        luts, regs, dsps, gates = row.tuple
        lines.append(
            f"{row.label:34s}{luts:>7d}{regs:>7d}{dsps:>6d}{gates:>9d}"
        )
        if include_paper:
            p = PAPER_TABLE3[row.key]
            lines.append(
                f"{'  (paper)':34s}{p[0]:>7d}{p[1]:>7d}{p[2]:>6d}"
                f"{p[3]:>9d}"
            )
    return "\n".join(lines)


def model_matches_paper(*, tolerance: float = 0.15) -> bool:
    """True if every modelled cell is within *tolerance* of Table 3."""
    for row in measure_table3():
        for got, want in zip(row.tuple, PAPER_TABLE3[row.key]):
            if want and abs(got - want) / want > tolerance:
                return False
    return True
