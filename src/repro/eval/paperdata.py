"""The paper's published numbers (Tables 3 and 4), for side-by-side
comparison in the regenerated reports.

Values are transcribed from:  H. Cheng et al., "RISC-V Instruction Set
Extensions for Multi-Precision Integer Arithmetic", DAC 2024 —
Table 3 (hardware) and Table 4 (software, clock cycles on the 50 MHz
Rocket core; group action in millions of cycles).
"""

from __future__ import annotations

#: Table 3 — (LUTs, Regs, DSPs, CMOS GE)
PAPER_TABLE3: dict[str, tuple[int, int, int, int]] = {
    "base": (4807, 2156, 16, 428680),
    "full": (5019, 2390, 16, 483248),
    "reduced": (5223, 2352, 16, 495290),
}

#: Table 4 rows 1-8 — cycles per operation and variant.
PAPER_TABLE4: dict[str, dict[str, int]] = {
    "int_mul": {"full.isa": 608, "full.ise": 371,
                "reduced.isa": 625, "reduced.ise": 303},
    "int_sqr": {"full.isa": 440, "full.ise": 371,
                "reduced.isa": 398, "reduced.ise": 216},
    "mont_redc": {"full.isa": 730, "full.ise": 469,
                  "reduced.isa": 818, "reduced.ise": 389},
    "fast_reduce": {"full.isa": 107, "full.ise": 107,
                    "reduced.isa": 112, "reduced.ise": 104},
    "fp_add": {"full.isa": 163, "full.ise": 163,
               "reduced.isa": 148, "reduced.ise": 132},
    "fp_sub": {"full.isa": 143, "full.ise": 143,
               "reduced.isa": 139, "reduced.ise": 123},
    "fp_mul": {"full.isa": 1446, "full.ise": 954,
               "reduced.isa": 1561, "reduced.ise": 799},
    "fp_sqr": {"full.isa": 1279, "full.ise": 951,
               "reduced.isa": 1334, "reduced.ise": 712},
}

#: Table 4 bottom row — group-action cycles (absolute) and speedups.
PAPER_GROUP_ACTION_CYCLES: dict[str, float] = {
    "full.isa": 701.0e6,
    "full.ise": 502.9e6,
    "reduced.isa": 736.2e6,
    "reduced.ise": 411.1e6,
}

PAPER_GROUP_ACTION_SPEEDUP: dict[str, float] = {
    "full.isa": 1.00,
    "full.ise": 1.39,
    "reduced.isa": 0.95,
    "reduced.ise": 1.71,
}

#: Human-readable row labels in the paper's order.
TABLE4_ROW_LABELS: dict[str, str] = {
    "int_mul": "Integer multiplication",
    "int_sqr": "Integer squaring",
    "mont_redc": "Montgomery reduction",
    "fast_reduce": "Fast modulo-p reduction",
    "fp_add": "Fp-addition",
    "fp_sub": "Fp-subtraction",
    "fp_mul": "Fp-multiplication",
    "fp_sqr": "Fp-squaring",
}
