"""Regeneration of Table 4's bottom row: CSIDH-512 group-action cycles.

The composition is:

1. run instrumented CSIDH-512 group actions (pure Python, seeded keys)
   to obtain the exact F_p operation counts;
2. multiply by the per-operation cycle costs measured on the simulator
   (the rows above in Table 4);
3. report absolute cycles and the speedup relative to the full-radix
   ISA-only baseline, exactly as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.csidh.opcount import (
    GroupActionProfile,
    average_group_action_profile,
)
from repro.csidh.parameters import CsidhParameters, csidh_512
from repro.eval.paperdata import (
    PAPER_GROUP_ACTION_CYCLES,
    PAPER_GROUP_ACTION_SPEEDUP,
)
from repro.eval.table4 import Table4
from repro.field.counters import OpCounter
from repro.kernels.spec import ALL_VARIANTS, VARIANT_FULL_ISA


@dataclass(frozen=True)
class GroupActionResult:
    """Cycle estimate of the group action for every variant."""

    ops: OpCounter                      # per-action operation counts
    cycles: dict[str, float]            # variant -> cycles
    speedup: dict[str, float]           # variant -> vs full-radix ISA

    def summary_lines(self, *, include_paper: bool = True) -> list[str]:
        lines = [
            f"{'Variant':14s}{'cycles':>14s}{'speedup':>9s}"
            + ("{:>16s}{:>9s}".format("paper cycles", "paper")
               if include_paper else "")
        ]
        for variant in ALL_VARIANTS:
            line = (
                f"{variant:14s}{self.cycles[variant]:>14,.0f}"
                f"{self.speedup[variant]:>8.2f}x"
            )
            if include_paper:
                line += (
                    f"{PAPER_GROUP_ACTION_CYCLES[variant]:>16,.0f}"
                    f"{PAPER_GROUP_ACTION_SPEEDUP[variant]:>8.2f}x"
                )
            lines.append(line)
        return lines


def compose_group_action(
    table: Table4,
    profile: GroupActionProfile,
) -> GroupActionResult:
    """Combine measured kernel costs with protocol op counts."""
    per_action = profile.per_action()
    cycles = {
        variant: float(per_action.cycles(table.op_costs(variant)))
        for variant in ALL_VARIANTS
    }
    baseline = cycles[VARIANT_FULL_ISA]
    speedup = {v: baseline / c for v, c in cycles.items()}
    return GroupActionResult(ops=per_action, cycles=cycles,
                             speedup=speedup)


def evaluate_group_action(
    table: Table4,
    *,
    params: CsidhParameters | None = None,
    keys: int = 3,
    seed: int = 7,
) -> GroupActionResult:
    """Full pipeline: instrument the protocol, compose with *table*."""
    params = params if params is not None else csidh_512()
    profile = average_group_action_profile(params, keys=keys, seed=seed)
    return compose_group_action(table, profile)
