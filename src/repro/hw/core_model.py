"""Area model of the Rocket RV64GC host core (Table 3 baseline).

Re-synthesising Rocket from Chisel is outside this reproduction's scope
(and toolchain); instead the base core is modelled as a per-block area
budget *calibrated to the paper's own measured baseline* (4807 LUTs,
2156 Regs, 16 DSPs, 428680 CMOS GE on the Artix-7 flow).  What the
model derives structurally — and what Table 3 is actually about — are
the *deltas* contributed by the two XMUL variants, composed in
:mod:`repro.hw.xmul` from the instruction definitions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.components import AreaCost


@dataclass(frozen=True)
class CoreBlock:
    """One micro-architectural block of the host core."""

    name: str
    area: AreaCost
    description: str = ""


#: Per-block budget; sums exactly to the paper's measured base core.
ROCKET_BLOCKS: tuple[CoreBlock, ...] = (
    CoreBlock("frontend", AreaCost(620, 320, 0, 39000),
              "fetch queue, branch prediction, PC logic"),
    CoreBlock("decode", AreaCost(410, 140, 0, 21000),
              "instruction decode and pipeline control"),
    CoreBlock("regfile", AreaCost(380, 0, 0, 29000),
              "31x64-bit GPRs (LUT-RAM on FPGA, flop array in CMOS)"),
    CoreBlock("alu", AreaCost(650, 180, 0, 31000),
              "integer ALU, shifter, bypass network"),
    CoreBlock("muldiv", AreaCost(420, 260, 16, 46000),
              "pipelined 64x64 multiplier and iterative divider"),
    CoreBlock("fpu", AreaCost(1280, 640, 0, 148000),
              "F/D floating-point unit"),
    CoreBlock("lsu", AreaCost(540, 310, 0, 52000),
              "load/store unit, address generation, TLB"),
    CoreBlock("csr", AreaCost(507, 306, 0, 62680),
              "CSR file, privilege/exception logic"),
)


@dataclass(frozen=True)
class CoreModel:
    """A core = base blocks plus optional ISE extension area."""

    name: str
    extension: AreaCost | None = None

    @property
    def base_area(self) -> AreaCost:
        total = AreaCost()
        for block in ROCKET_BLOCKS:
            total = total + block.area
        return total

    @property
    def total_area(self) -> AreaCost:
        total = self.base_area
        if self.extension is not None:
            total = total + self.extension
        return total.rounded()

    def overhead_percent(self) -> dict[str, float]:
        """Relative overhead of the extension over the base core."""
        base = self.base_area
        total = self.total_area
        def pct(new: float, old: float) -> float:
            return 100.0 * (new - old) / old if old else 0.0
        return {
            "luts": pct(total.luts, base.luts),
            "regs": pct(total.regs, base.regs),
            "dsps": pct(total.dsps, base.dsps),
            "gates": pct(total.gates, base.gates),
        }


BASE_CORE = CoreModel("base core (RV64GC Rocket)")
