"""Hardware cost model: base Rocket core + XMUL variants (Table 3)."""

from repro.hw.components import (
    AreaCost,
    adder,
    barrel_shifter,
    control,
    logic_gates,
    multiplier,
    mux,
    register,
)
from repro.hw.core_model import BASE_CORE, CoreBlock, CoreModel, ROCKET_BLOCKS
from repro.hw.timing import (
    StageDelay,
    TARGET_CLOCK_NS,
    base_multiplier_stage,
    critical_path_report,
    xmul_extends_critical_path,
    xmul_full_radix_stage2,
    xmul_reduced_radix_stage2,
)
from repro.hw.xmul import (
    FULL_RADIX_CORE,
    REDUCED_RADIX_CORE,
    XmulPart,
    full_radix_extension,
    full_radix_parts,
    reduced_radix_extension,
    reduced_radix_parts,
)

__all__ = [
    "StageDelay",
    "TARGET_CLOCK_NS",
    "base_multiplier_stage",
    "critical_path_report",
    "xmul_extends_critical_path",
    "xmul_full_radix_stage2",
    "xmul_reduced_radix_stage2",
    "AreaCost",
    "adder",
    "barrel_shifter",
    "control",
    "logic_gates",
    "multiplier",
    "mux",
    "register",
    "BASE_CORE",
    "CoreBlock",
    "CoreModel",
    "ROCKET_BLOCKS",
    "FULL_RADIX_CORE",
    "REDUCED_RADIX_CORE",
    "XmulPart",
    "full_radix_extension",
    "full_radix_parts",
    "reduced_radix_extension",
    "reduced_radix_parts",
]
