"""First-order hardware area model: component cost library.

The paper reports Vivado synthesis results for an Artix-7 (LUTs, Regs,
DSPs) and a CMOS gate-equivalent figure (Table 3).  Without an FPGA
toolchain we estimate areas *structurally*: each datapath element gets a
cost in both technology domains, using standard first-order figures:

* a W-bit ripple/carry-lookahead adder maps to ~W LUTs (one LUT per bit
  with carry chains) and ~9 GE/bit in CMOS;
* a flip-flop is one FPGA register and ~7 GE;
* a W-bit 2:1 mux is ~W/2 6-input LUTs and ~3 GE/bit;
* a W-bit barrel shifter is log2(W) mux stages;
* random control logic is counted per decoded signal.

These coefficients are deliberately simple and visible; the experiment
matching Table 3 compares the *composed deltas* (extended core minus
base core) against the paper's, which is the paper's own headline claim
(a ~10 % core overhead).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class AreaCost:
    """Area in both technology domains."""

    luts: float = 0.0
    regs: float = 0.0
    dsps: float = 0.0
    gates: float = 0.0  # CMOS NAND2 gate equivalents

    def __add__(self, other: "AreaCost") -> "AreaCost":
        return AreaCost(
            self.luts + other.luts,
            self.regs + other.regs,
            self.dsps + other.dsps,
            self.gates + other.gates,
        )

    def scaled(self, factor: float) -> "AreaCost":
        return AreaCost(
            self.luts * factor,
            self.regs * factor,
            self.dsps * factor,
            self.gates * factor,
        )

    def rounded(self) -> "AreaCost":
        return AreaCost(
            round(self.luts), round(self.regs),
            round(self.dsps), round(self.gates),
        )


ZERO_AREA = AreaCost()

# technology coefficients (first-order, see module docstring)
_GE_PER_FF = 7.0
_GE_PER_ADDER_BIT = 9.0
_GE_PER_MUX2_BIT = 3.0
_GE_PER_XOR_BIT = 2.5
_GE_PER_AND_BIT = 1.5
_LUTS_PER_ADDER_BIT = 1.0
_LUTS_PER_MUX2_BIT = 0.5
_LUTS_PER_LOGIC_BIT = 0.5


def adder(width: int) -> AreaCost:
    """Carry-propagate adder."""
    return AreaCost(
        luts=_LUTS_PER_ADDER_BIT * width,
        gates=_GE_PER_ADDER_BIT * width,
    )


def register(width: int) -> AreaCost:
    """Pipeline/architectural register stage."""
    return AreaCost(regs=width, gates=_GE_PER_FF * width)


def mux(width: int, ways: int) -> AreaCost:
    """*ways*:1 multiplexer, built from 2:1 stages."""
    if ways < 2:
        return ZERO_AREA
    stages = ways - 1  # 2:1 muxes in a tree
    return AreaCost(
        luts=_LUTS_PER_MUX2_BIT * width * stages,
        gates=_GE_PER_MUX2_BIT * width * stages,
    )


def barrel_shifter(width: int) -> AreaCost:
    """Logarithmic shifter (used by ``sraiadd``'s variable shift)."""
    stages = math.ceil(math.log2(width))
    return mux(width, 2).scaled(stages)


def logic_gates(width: int, *, kind: str = "and") -> AreaCost:
    """A rank of 2-input gates (masking, XOR select networks)."""
    per_bit = {"and": _GE_PER_AND_BIT, "xor": _GE_PER_XOR_BIT}[kind]
    return AreaCost(
        luts=_LUTS_PER_LOGIC_BIT * width,
        gates=per_bit * width,
    )


def control(signals: int) -> AreaCost:
    """Random decode/control logic, ~2 LUTs / 12 GE per signal."""
    return AreaCost(luts=2.0 * signals, gates=12.0 * signals)


def multiplier(width: int) -> AreaCost:
    """A *width* x *width* pipelined integer multiplier.

    On Artix-7 this maps onto DSP48 blocks: the 17-bit partial-product
    tiling needs ``ceil(w/17)^2`` slices, i.e. 16 for a 64x64 multiply
    (matching the Rocket baseline's DSP count).  In CMOS a radix-4
    Booth array is roughly 6.5 GE per partial-product bit.
    """
    dsps = math.ceil(width / 17) ** 2
    return AreaCost(dsps=dsps, gates=6.5 * width * width)
