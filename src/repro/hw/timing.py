"""First-order combinational-delay model (the clock-frequency claim).

Sect. 3.3: "XMUL is implemented with a 2-stage pipeline ... XMUL does
not extend the existing critical path and thus does not impact the
clock frequency" (the system runs at 50 MHz on the Artix-7).

We model each pipeline stage's combinational depth in *logic levels*
(LUT levels on the FPGA; a gate level is ~0.9 ns on Artix-7 speed grade
-1 including routing).  The base core's critical stage is the 64x64
multiplier array stage; the XMUL additions (fused accumulate adder,
mask/shift selects) sit in the *second* stage, in parallel with or
after the compressed partial products, and stay shallower than the
array stage — hence no frequency impact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: effective delay per logic level (ns), Artix-7 -1 incl. routing
NS_PER_LEVEL = 0.9

#: target clock of the paper's system (50 MHz -> 20 ns budget)
TARGET_CLOCK_NS = 20.0


@dataclass(frozen=True)
class StageDelay:
    """One pipeline stage's combinational depth."""

    name: str
    levels: float

    @property
    def nanoseconds(self) -> float:
        return self.levels * NS_PER_LEVEL

    def meets(self, budget_ns: float = TARGET_CLOCK_NS) -> bool:
        return self.nanoseconds <= budget_ns


def adder_levels(width: int) -> float:
    """Carry-lookahead/compressor adder: ~log2(width) + 2 levels."""
    return math.log2(max(width, 2)) + 2


def multiplier_stage_levels(width: int) -> float:
    """Booth partial-product generation + compression tree for one
    pipeline stage of a *width* x *width* multiplier: the dominant
    combinational path of the base core's execute stage."""
    # Booth mux (2) + 4:2 compressor tree (~log1.5 of height) + final CPA
    tree_levels = math.log(width / 2, 1.5)
    return 2 + tree_levels + adder_levels(2 * width)


def mux_levels(ways: int) -> float:
    return math.ceil(math.log2(max(ways, 2)))


def shifter_levels(width: int) -> float:
    return math.ceil(math.log2(width))


# -- stage composition ------------------------------------------------------

def base_multiplier_stage() -> StageDelay:
    """The existing Rocket multiplier stage (the reference path)."""
    return StageDelay("base 64x64 multiplier stage",
                      multiplier_stage_levels(64))


def xmul_full_radix_stage2() -> StageDelay:
    """Stage 2 of the full-radix XMUL: 128-bit fused accumulate +
    hi/lo select + cadd carry tap."""
    levels = adder_levels(128) + mux_levels(2) + 1
    return StageDelay("XMUL full-radix stage 2", levels)


def xmul_reduced_radix_stage2() -> StageDelay:
    """Stage 2 of the reduced-radix XMUL: fixed 57-bit slice (wiring),
    mask select, 64-bit accumulate, result select; the sraiadd path is
    a barrel shifter plus adder, also within budget."""
    madd_path = mux_levels(2) + adder_levels(64) + mux_levels(2)
    sraiadd_path = shifter_levels(64) + adder_levels(64)
    return StageDelay("XMUL reduced-radix stage 2",
                      max(madd_path, sraiadd_path))


def critical_path_report() -> dict[str, float]:
    """Stage-delay summary in nanoseconds."""
    stages = (
        base_multiplier_stage(),
        xmul_full_radix_stage2(),
        xmul_reduced_radix_stage2(),
    )
    return {stage.name: round(stage.nanoseconds, 2) for stage in stages}


def xmul_extends_critical_path() -> bool:
    """The paper's claim, as a predicate: False (does NOT extend)."""
    base = base_multiplier_stage().nanoseconds
    return (
        xmul_full_radix_stage2().nanoseconds > base
        or xmul_reduced_radix_stage2().nanoseconds > base
    )
