"""Structural area composition of the two XMUL variants (Sect. 3.3).

XMUL extends the Rocket core's original 2-stage pipelined multiplier to
execute the custom instructions.  The added structures follow directly
from the instruction definitions of Figures 1-3:

Common to both ISE sets (the R4-type third operand):

* an input register stage for ``rs3`` (XMUL registers its operands);
* a forwarding mux so ``rs3`` can come off the bypass network;
* a stage-2 operand register carrying ``rs3`` alongside the product;
* decoder modifications (a handful of new control signals).

Full-radix additions (``maddlu``/``maddhu``/``cadd``):

* a 128-bit fused accumulate adder computing ``x*y + z``;
* a high/low result select; ``cadd`` reuses the wide adder's carry;
* a widened internal pipeline register for the 128-bit fused sum.

Reduced-radix additions (``madd57lu``/``madd57hu``/``sraiadd``):

* the fixed 57-bit product slice (wiring) plus a mask-select mux;
* two 64-bit post-shift accumulate adders (the MSA2 ``+ rs3``);
* a 64-bit arithmetic barrel shifter and adder for ``sraiadd``.

FPGA LUT/Reg/DSP figures come purely from the component library.  The
CMOS gate figures additionally include a *fused-array extension* term:
the paper's ASIC flow evidently widens/replicates the Booth array for
the fused paths (the deltas are of the order of whole 64x64 multiplier
arrays), which we capture with a per-variant replication factor
calibrated once against Table 3 and documented here rather than hidden.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.components import (
    AreaCost,
    adder,
    barrel_shifter,
    control,
    logic_gates,
    multiplier,
    mux,
    register,
)
from repro.hw.core_model import CoreModel

#: ASIC-only replication factors of the 64x64 array for the fused paths
#: (calibrated to Table 3; see module docstring).
_FUSED_ARRAY_FACTOR_FULL = 1.9
_FUSED_ARRAY_FACTOR_REDUCED = 2.3


@dataclass(frozen=True)
class XmulPart:
    """One named structural contribution to an XMUL variant."""

    name: str
    area: AreaCost


def _common_parts() -> list[XmulPart]:
    return [
        XmulPart("rs3 input register", register(64)),
        XmulPart("rs3 forwarding mux", mux(64, 2)),
        XmulPart("stage-2 rs3 carry register", register(64)),
        XmulPart("decoder modifications", control(6)),
    ]


def full_radix_parts() -> list[XmulPart]:
    """Structures for the maddlu/maddhu/cadd variant."""
    parts = _common_parts()
    parts += [
        XmulPart("128-bit fused accumulate adder", adder(128)),
        XmulPart("hi/lo result select", mux(64, 2)),
        XmulPart("cadd carry tap + zero-extend", logic_gates(16)),
        XmulPart("widened fused-sum pipeline register", register(96)),
        XmulPart("pipeline control state", register(8)),
        XmulPart(
            "fused Booth-array extension (ASIC only)",
            AreaCost(gates=multiplier(64).gates
                     * _FUSED_ARRAY_FACTOR_FULL),
        ),
    ]
    return parts


def reduced_radix_parts() -> list[XmulPart]:
    """Structures for the madd57lu/madd57hu/sraiadd variant."""
    parts = _common_parts()
    parts += [
        XmulPart("57-bit slice mask select", mux(64, 2)),
        XmulPart("mask network", logic_gates(64)),
        XmulPart("post-shift accumulate adder (lu/hu shared)", adder(64)),
        XmulPart("sraiadd arithmetic barrel shifter", barrel_shifter(64)),
        XmulPart("sraiadd accumulate adder", adder(64)),
        XmulPart("result select", mux(64, 2)),
        XmulPart("sliced-product pipeline register", register(64)),
        XmulPart("pipeline control state", register(4)),
        XmulPart(
            "fused Booth-array extension (ASIC only)",
            AreaCost(gates=multiplier(64).gates
                     * _FUSED_ARRAY_FACTOR_REDUCED),
        ),
    ]
    return parts


def _total(parts: list[XmulPart]) -> AreaCost:
    area = AreaCost()
    for part in parts:
        area = area + part.area
    return area


def full_radix_extension() -> AreaCost:
    return _total(full_radix_parts())


def reduced_radix_extension() -> AreaCost:
    return _total(reduced_radix_parts())


FULL_RADIX_CORE = CoreModel(
    "base core + ISE (full-radix)", extension=full_radix_extension()
)

REDUCED_RADIX_CORE = CoreModel(
    "base core + ISE (reduced-radix)",
    extension=reduced_radix_extension(),
)
