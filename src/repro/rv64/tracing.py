"""Execution tracing and profiling utilities for the simulator.

Complements the timing model with *observability*: dynamic instruction
histograms, per-pc hot-spot ranking, instruction-kind mixes and
formatted profile reports — the tooling one needs to reason about where
a kernel spends its instructions (e.g. what fraction of a Montgomery
multiplication is MAC work vs. carry bookkeeping, the paper's central
software argument).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.rv64.isa import InstructionSet
from repro.rv64.machine import Machine


@dataclass
class ExecutionProfile:
    """Dynamic counts gathered over one or more runs."""

    mnemonics: Counter = field(default_factory=Counter)
    kinds: Counter = field(default_factory=Counter)
    pcs: Counter = field(default_factory=Counter)
    total: int = 0

    def mnemonic_fraction(self, *names: str) -> float:
        """Fraction of dynamic instructions drawn from *names*."""
        if not self.total:
            return 0.0
        return sum(self.mnemonics[n] for n in names) / self.total

    def hottest(self, count: int = 10) -> list[tuple[int, int]]:
        """The *count* most-executed pcs as (pc, executions)."""
        return self.pcs.most_common(count)

    def report(self, *, top: int = 12) -> str:
        """Human-readable profile summary."""
        lines = [f"dynamic instructions: {self.total}"]
        lines.append("instruction kinds:")
        for kind, n in self.kinds.most_common():
            lines.append(f"  {kind:8s} {n:8d}  ({100 * n / self.total:5.1f}%)")
        lines.append(f"top {top} mnemonics:")
        for mnemonic, n in self.mnemonics.most_common(top):
            lines.append(
                f"  {mnemonic:10s} {n:8d}  ({100 * n / self.total:5.1f}%)"
            )
        return "\n".join(lines)


class Profiler:
    """Attachable machine profiler (a trace hook with aggregation)."""

    def __init__(self, isa: InstructionSet) -> None:
        self.isa = isa
        self.profile = ExecutionProfile()

    def hook(self, state, ins) -> None:
        profile = self.profile
        profile.mnemonics[ins.mnemonic] += 1
        profile.kinds[self.isa[ins.mnemonic].kind] += 1
        profile.pcs[state.pc] += 1
        profile.total += 1

    def attach(self, machine: Machine) -> "Profiler":
        """Attach to *machine*.

        Note: while attached, the machine serves every run — including
        ``run(replay=True)`` requests — through the **interpreter**,
        because replay skips the per-instruction dispatch this hook
        needs.  ``ExecutionResult.engine`` reports which engine
        actually ran; detach to restore the replay fast path.
        """
        machine.add_trace_hook(self.hook)
        return self

    def detach(self, machine: Machine) -> "Profiler":
        """Stop observing *machine* (re-enables its replay path)."""
        machine.remove_trace_hook(self.hook)
        return self

    def reset(self) -> None:
        self.profile = ExecutionProfile()


def profile_machine_run(
    machine: Machine, entry: int, **run_kwargs
) -> ExecutionProfile:
    """Run *machine* from *entry* with a profiler attached."""
    profiler = Profiler(machine.isa)
    with machine.trace_hook(profiler.hook):
        machine.run(entry, **run_kwargs)
    return profiler.profile


def instruction_mix(machine: Machine, entry: int) -> dict[str, float]:
    """Kind -> dynamic fraction for one run (convenience wrapper)."""
    profile = profile_machine_run(machine, entry)
    if not profile.total:
        return {}
    return {
        kind: count / profile.total
        for kind, count in profile.kinds.items()
    }
