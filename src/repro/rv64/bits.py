"""Fixed-width two's-complement bit manipulation helpers.

The RV64 simulator stores every register as a Python ``int`` in the range
``[0, 2**64)``.  These helpers implement the wrap-around arithmetic,
sign-extension and field extraction used throughout the instruction
semantics, mirroring the notation of the paper (Sect. 2, "Notation"):
``EXTS`` is an arithmetic (sign-extending) shift and ``bits(x, h, l)`` is
the paper's ``x_{h..l}`` extraction.
"""

from __future__ import annotations

XLEN = 64
MASK64 = (1 << 64) - 1
MASK32 = (1 << 32) - 1
MASK128 = (1 << 128) - 1
SIGN64 = 1 << 63
SIGN32 = 1 << 31


def u64(value: int) -> int:
    """Truncate *value* to an unsigned 64-bit integer."""
    return value & MASK64


def u32(value: int) -> int:
    """Truncate *value* to an unsigned 32-bit integer."""
    return value & MASK32


def s64(value: int) -> int:
    """Interpret the low 64 bits of *value* as a signed integer."""
    value &= MASK64
    return value - (1 << 64) if value & SIGN64 else value


def s32(value: int) -> int:
    """Interpret the low 32 bits of *value* as a signed integer."""
    value &= MASK32
    return value - (1 << 32) if value & SIGN32 else value


def sign_extend(value: int, width: int) -> int:
    """Sign-extend the low *width* bits of *value* to a Python int."""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    value &= (1 << width) - 1
    if value & (1 << (width - 1)):
        value -= 1 << width
    return value


def zero_extend(value: int, width: int) -> int:
    """Zero-extend (truncate) *value* to the low *width* bits."""
    return value & ((1 << width) - 1)


def bits(value: int, high: int, low: int) -> int:
    """Extract bits ``high..low`` (inclusive, high >= low) from *value*.

    This is the paper's ``x_{h..l}`` notation.
    """
    if high < low:
        raise ValueError(f"bit range [{high}..{low}] is empty")
    return (value >> low) & ((1 << (high - low + 1)) - 1)


def set_bits(value: int, high: int, low: int, field: int) -> int:
    """Return *value* with bits ``high..low`` replaced by *field*."""
    width = high - low + 1
    mask = ((1 << width) - 1) << low
    return (value & ~mask) | ((field & ((1 << width) - 1)) << low)


def sra64(value: int, shamt: int) -> int:
    """64-bit arithmetic right shift (the paper's ``EXTS(x >> y)``)."""
    return u64(s64(value) >> (shamt & 63))


def srl64(value: int, shamt: int) -> int:
    """64-bit logical right shift."""
    return u64(value) >> (shamt & 63)


def sll64(value: int, shamt: int) -> int:
    """64-bit logical left shift (wraps, as RISC-V ``slli``)."""
    return u64(u64(value) << (shamt & 63))


def mulhu64(a: int, b: int) -> int:
    """Upper 64 bits of the unsigned 128-bit product (RV64M ``mulhu``)."""
    return (u64(a) * u64(b)) >> 64


def mulh64(a: int, b: int) -> int:
    """Upper 64 bits of the signed × signed product (RV64M ``mulh``)."""
    return u64((s64(a) * s64(b)) >> 64)


def mulhsu64(a: int, b: int) -> int:
    """Upper 64 bits of signed *a* × unsigned *b* (RV64M ``mulhsu``)."""
    return u64((s64(a) * u64(b)) >> 64)


def widening_mul(a: int, b: int) -> tuple[int, int]:
    """Return ``(hi, lo)`` halves of the unsigned 128-bit product."""
    product = u64(a) * u64(b)
    return product >> 64, product & MASK64


def popcount(value: int) -> int:
    """Number of set bits in the low 64 bits of *value*."""
    return bin(value & MASK64).count("1")


def bit_length_unsigned(value: int) -> int:
    """Bit length of *value* treated as an unsigned 64-bit quantity."""
    return u64(value).bit_length()


def fits_unsigned(value: int, width: int) -> bool:
    """True if *value* is representable as an unsigned *width*-bit int."""
    return 0 <= value < (1 << width)


def fits_signed(value: int, width: int) -> bool:
    """True if *value* is representable as a signed *width*-bit int."""
    bound = 1 << (width - 1)
    return -bound <= value < bound
