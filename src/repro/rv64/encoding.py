"""Binary encoding and decoding of 32-bit RISC-V instruction words.

Implements the standard R/I/S/B/U/J formats of the RISC-V user-level ISA
plus the two custom formats used by the paper:

* the R4-type format (three source registers, one destination; bits 26:25
  carry a 2-bit ``funct2`` selector) used by ``maddlu``/``maddhu``/
  ``madd57lu``/``madd57hu``/``cadd`` (Figures 1-3), and
* the register-register-immediate format of ``sraiadd`` (Figure 3), which
  places a 6-bit shift amount in bits 30:25 with bit 31 set.

Encoders and decoders are driven entirely by :class:`InstrSpec` metadata,
so ISE sets defined elsewhere decode with no changes here.
"""

from __future__ import annotations

from repro.errors import EncodingError
from repro.rv64.bits import bits, fits_signed, sign_extend
from repro.rv64.isa import (
    FMT_B,
    FMT_I,
    FMT_I_SHIFT,
    FMT_J,
    FMT_LOAD,
    FMT_NONE,
    FMT_R,
    FMT_R4,
    FMT_RIA,
    FMT_S,
    FMT_U,
    Instruction,
    InstrSpec,
    InstructionSet,
    OP_IMM,
)

_WORD_SHIFT_OPCODES = {0b0011011}  # OP_IMM32: 5-bit shamt


def _check_reg(value: int, field_name: str) -> int:
    if not 0 <= value < 32:
        raise EncodingError(f"{field_name} out of range: {value}")
    return value


def encode(spec: InstrSpec, ins: Instruction) -> int:
    """Encode *ins* (matching *spec*) into a 32-bit instruction word."""
    opcode = spec.opcode
    rd = _check_reg(ins.rd, "rd")
    rs1 = _check_reg(ins.rs1, "rs1")
    rs2 = _check_reg(ins.rs2, "rs2")
    rs3 = _check_reg(ins.rs3, "rs3")
    f3 = spec.funct3 or 0
    fmt = spec.fmt

    if fmt == FMT_R:
        return ((spec.funct7 or 0) << 25 | rs2 << 20 | rs1 << 15
                | f3 << 12 | rd << 7 | opcode)

    if fmt == FMT_R4:
        if spec.funct2 is None:
            raise EncodingError(f"{spec.mnemonic}: R4 format needs funct2")
        return (rs3 << 27 | spec.funct2 << 25 | rs2 << 20 | rs1 << 15
                | f3 << 12 | rd << 7 | opcode)

    if fmt in (FMT_I, FMT_LOAD):
        if not fits_signed(ins.imm, 12):
            raise EncodingError(
                f"{spec.mnemonic}: immediate {ins.imm} exceeds 12 bits"
            )
        return ((ins.imm & 0xFFF) << 20 | rs1 << 15 | f3 << 12
                | rd << 7 | opcode)

    if fmt == FMT_I_SHIFT:
        shamt_bits = 5 if opcode in _WORD_SHIFT_OPCODES else 6
        if not 0 <= ins.imm < (1 << shamt_bits):
            raise EncodingError(
                f"{spec.mnemonic}: shift amount {ins.imm} out of range"
            )
        funct7 = spec.funct7 or 0
        if shamt_bits == 6:
            imm12 = ((funct7 >> 1) << 6) | ins.imm
        else:
            imm12 = (funct7 << 5) | ins.imm
        return imm12 << 20 | rs1 << 15 | f3 << 12 | rd << 7 | opcode

    if fmt == FMT_S:
        if not fits_signed(ins.imm, 12):
            raise EncodingError(
                f"{spec.mnemonic}: store offset {ins.imm} exceeds 12 bits"
            )
        imm = ins.imm & 0xFFF
        return (bits(imm, 11, 5) << 25 | rs2 << 20 | rs1 << 15
                | f3 << 12 | bits(imm, 4, 0) << 7 | opcode)

    if fmt == FMT_B:
        if not fits_signed(ins.imm, 13) or ins.imm & 1:
            raise EncodingError(
                f"{spec.mnemonic}: branch offset {ins.imm} invalid"
            )
        imm = ins.imm & 0x1FFF
        return (bits(imm, 12, 12) << 31 | bits(imm, 10, 5) << 25
                | rs2 << 20 | rs1 << 15 | f3 << 12
                | bits(imm, 4, 1) << 8 | bits(imm, 11, 11) << 7 | opcode)

    if fmt == FMT_U:
        if not 0 <= ins.imm < (1 << 20):
            raise EncodingError(
                f"{spec.mnemonic}: U-immediate {ins.imm} out of range"
            )
        return ins.imm << 12 | rd << 7 | opcode

    if fmt == FMT_J:
        if not fits_signed(ins.imm, 21) or ins.imm & 1:
            raise EncodingError(
                f"{spec.mnemonic}: jump offset {ins.imm} invalid"
            )
        imm = ins.imm & 0x1FFFFF
        return (bits(imm, 20, 20) << 31 | bits(imm, 10, 1) << 21
                | bits(imm, 11, 11) << 20 | bits(imm, 19, 12) << 12
                | rd << 7 | opcode)

    if fmt == FMT_RIA:
        if not 0 <= ins.imm < 64:
            raise EncodingError(
                f"{spec.mnemonic}: shift amount {ins.imm} out of range"
            )
        return (1 << 31 | ins.imm << 25 | rs2 << 20 | rs1 << 15
                | f3 << 12 | rd << 7 | opcode)

    if fmt == FMT_NONE:
        # ecall/ebreak/fence: I-type with a fixed immediate selector.
        selector = spec.funct7 or 0
        return selector << 20 | f3 << 12 | opcode

    raise EncodingError(f"unknown format {fmt!r} for {spec.mnemonic}")


class Decoder:
    """Decode 32-bit instruction words against an :class:`InstructionSet`.

    Builds a dispatch index keyed on (opcode, funct3, discriminator) once,
    then decodes each word with dictionary lookups.
    """

    def __init__(self, isa: InstructionSet) -> None:
        self.isa = isa
        self._index: dict[tuple[int, int | None], list[InstrSpec]] = {}
        for spec in isa.specs():
            key = (spec.opcode, spec.funct3)
            self._index.setdefault(key, []).append(spec)

    def _candidates(self, opcode: int, funct3: int) -> list[InstrSpec]:
        found = self._index.get((opcode, funct3), [])
        found = found + self._index.get((opcode, None), [])
        if not found:
            raise EncodingError(
                f"no instruction with opcode {opcode:#09b} "
                f"funct3 {funct3:#05b} in ISA {self.isa.name!r}"
            )
        return found

    def decode(self, word: int) -> Instruction:
        """Decode one instruction word, raising EncodingError on failure."""
        if not 0 <= word < (1 << 32):
            raise EncodingError(f"not a 32-bit word: {word:#x}")
        if word & 0b11 != 0b11:
            raise EncodingError(
                f"compressed (16-bit) encodings unsupported: {word:#010x}"
            )
        opcode = word & 0x7F
        funct3 = bits(word, 14, 12)
        rd = bits(word, 11, 7)
        rs1 = bits(word, 19, 15)
        rs2 = bits(word, 24, 20)

        for spec in self._candidates(opcode, funct3):
            decoded = self._try_decode(spec, word, rd, rs1, rs2)
            if decoded is not None:
                return decoded
        raise EncodingError(f"undecodable instruction word {word:#010x}")

    def _try_decode(
        self, spec: InstrSpec, word: int, rd: int, rs1: int, rs2: int
    ) -> Instruction | None:
        fmt = spec.fmt
        m = spec.mnemonic

        if fmt == FMT_R:
            if bits(word, 31, 25) != (spec.funct7 or 0):
                return None
            return Instruction(m, rd=rd, rs1=rs1, rs2=rs2)

        if fmt == FMT_R4:
            if bits(word, 26, 25) != spec.funct2:
                return None
            return Instruction(m, rd=rd, rs1=rs1, rs2=rs2,
                               rs3=bits(word, 31, 27))

        if fmt in (FMT_I, FMT_LOAD):
            return Instruction(m, rd=rd, rs1=rs1,
                               imm=sign_extend(bits(word, 31, 20), 12))

        if fmt == FMT_I_SHIFT:
            shamt_bits = 5 if spec.opcode in _WORD_SHIFT_OPCODES else 6
            if shamt_bits == 6:
                funct6 = bits(word, 31, 26)
                if funct6 != (spec.funct7 or 0) >> 1:
                    return None
                shamt = bits(word, 25, 20)
            else:
                if bits(word, 31, 25) != (spec.funct7 or 0):
                    return None
                shamt = bits(word, 24, 20)
            return Instruction(m, rd=rd, rs1=rs1, imm=shamt)

        if fmt == FMT_S:
            imm = (bits(word, 31, 25) << 5) | bits(word, 11, 7)
            return Instruction(m, rs1=rs1, rs2=rs2,
                               imm=sign_extend(imm, 12))

        if fmt == FMT_B:
            imm = (bits(word, 31, 31) << 12 | bits(word, 7, 7) << 11
                   | bits(word, 30, 25) << 5 | bits(word, 11, 8) << 1)
            return Instruction(m, rs1=rs1, rs2=rs2,
                               imm=sign_extend(imm, 13))

        if fmt == FMT_U:
            return Instruction(m, rd=rd, imm=bits(word, 31, 12))

        if fmt == FMT_J:
            imm = (bits(word, 31, 31) << 20 | bits(word, 19, 12) << 12
                   | bits(word, 20, 20) << 11 | bits(word, 30, 21) << 1)
            return Instruction(m, rd=rd, imm=sign_extend(imm, 21))

        if fmt == FMT_RIA:
            if bits(word, 31, 31) != 1:
                return None
            return Instruction(m, rd=rd, rs1=rs1, rs2=rs2,
                               imm=bits(word, 30, 25))

        if fmt == FMT_NONE:
            selector = bits(word, 31, 20)
            if selector != (spec.funct7 or 0) and spec.opcode != 0b0001111:
                return None
            return Instruction(m)

        return None


def encode_instruction(isa: InstructionSet, ins: Instruction) -> int:
    """Encode *ins* using the spec registered in *isa*."""
    return encode(isa[ins.mnemonic], ins)


def encode_program(isa: InstructionSet,
                   program: list[Instruction]) -> list[int]:
    """Encode a straight-line instruction list into 32-bit words."""
    return [encode_instruction(isa, ins) for ins in program]
