"""Pipeline timeline rendering: per-instruction issue/complete views.

A debugging and documentation aid: run a snippet under the timing model
and render a text Gantt chart showing when each instruction issues,
where hazard bubbles appear, and which latency caused them — the
cycle-level intuition behind Listings 1-4.

Example output::

    cycle     0123456789
    mulhu  t0 M==
    mul    t1 .M==
    add    a0 ...A        <- waited 2 on t1
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rv64.assembler import assemble
from repro.rv64.isa import InstructionSet, Instruction
from repro.rv64.machine import Machine
from repro.rv64.pipeline import PipelineConfig, PipelineModel
from repro.rv64.registers import register_name


@dataclass(frozen=True)
class TimelineEntry:
    """Issue/complete record of one executed instruction."""

    index: int
    text: str
    kind: str
    issue: int
    complete: int
    stall: int  # cycles waited on operands beyond the issue slot


class TimelineRecorder:
    """Wraps a PipelineModel, recording per-instruction issue times."""

    def __init__(self, config: PipelineConfig | None = None) -> None:
        self.model = PipelineModel(config or PipelineConfig())
        self.entries: list[TimelineEntry] = []
        self._expected_issue = 0

    def record(self, spec, ins: Instruction, *, pc: int,
               mem_address: int | None, branch_taken: bool,
               text: str) -> None:
        earliest = self.model._next_issue
        issue = self.model.issue(spec, ins, pc=pc,
                                 mem_address=mem_address,
                                 branch_taken=branch_taken)
        latency = self.model.config.latency_for(spec.kind)
        self.entries.append(TimelineEntry(
            index=len(self.entries),
            text=text,
            kind=spec.kind,
            issue=issue,
            complete=issue + latency,
            stall=issue - earliest,
        ))


def trace_timeline(
    source: str,
    isa: InstructionSet,
    *,
    regs: dict[str, int] | None = None,
    config: PipelineConfig | None = None,
) -> list[TimelineEntry]:
    """Assemble and run *source*, returning the issue timeline."""
    program = assemble(source, isa)
    machine = Machine(isa)
    entry_pc = machine.load_program(program)
    recorder = TimelineRecorder(config)

    def hook(state, ins: Instruction) -> None:
        spec = isa[ins.mnemonic]
        from repro.rv64.disassembler import format_instruction

        recorder.record(
            spec, ins, pc=state.pc,
            mem_address=state.last_address,
            branch_taken=state.branch_taken,
            text=format_instruction(isa, ins),
        )

    machine.add_trace_hook(hook)
    for name, value in (regs or {}).items():
        machine.regs[name] = value
    machine.run(entry_pc)
    return recorder.entries


_KIND_GLYPH = {
    "mul": "M", "alu": "A", "load": "L", "store": "S",
    "branch": "B", "jump": "J", "div": "D", "system": "Y",
}


def render_timeline(entries: list[TimelineEntry],
                    *, width: int = 64) -> str:
    """Text Gantt chart of the issue timeline."""
    if not entries:
        return "(empty)"
    horizon = min(max(e.complete for e in entries) + 1, width)
    label_width = max(len(e.text) for e in entries) + 2
    ruler = "".join(str(c % 10) for c in range(horizon))
    lines = [f"{'cycle':<{label_width}}{ruler}"]
    for e in entries:
        row = ["."] * min(e.issue, horizon)
        if e.issue < horizon:
            row.append(_KIND_GLYPH.get(e.kind, "?"))
            for c in range(e.issue + 1, min(e.complete, horizon)):
                row.append("=")
        suffix = f"   <- stalled {e.stall}" if e.stall else ""
        lines.append(f"{e.text:<{label_width}}{''.join(row)}{suffix}")
    return "\n".join(lines)
