"""Set-associative cache models for the Rocket-like memory hierarchy.

The host core in the paper has a 16 kB instruction cache and a 16 kB data
cache.  For the steady-state kernel measurements of Table 4 the caches
are warm (every working set fits easily), so the default timing
configuration treats hits as free and only charges miss penalties.  The
models still track hits/misses so cold-start behaviour can be studied.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import ParameterError


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache."""

    size_bytes: int = 16 * 1024
    line_bytes: int = 64
    ways: int = 4
    miss_penalty: int = 20  # cycles charged per miss

    def __post_init__(self) -> None:
        if self.line_bytes <= 0 or self.line_bytes & (self.line_bytes - 1):
            raise ParameterError("line_bytes must be a power of two")
        if self.size_bytes % (self.line_bytes * self.ways):
            raise ParameterError(
                "size_bytes must be divisible by line_bytes * ways"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.ways)


class Cache:
    """An LRU set-associative cache supporting lookup-with-fill."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(config.num_sets)
        ]
        self._line_shift = config.line_bytes.bit_length() - 1
        self.hits = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Access *address*; return True on hit.  Misses fill the line."""
        line = address >> self._line_shift
        cache_set = self._sets[line % self.config.num_sets]
        if line in cache_set:
            cache_set.move_to_end(line)
            self.hits += 1
            return True
        self.misses += 1
        cache_set[line] = None
        if len(cache_set) > self.config.ways:
            cache_set.popitem(last=False)
        return False

    def warm(self, address: int, size: int) -> None:
        """Pre-fill every line covering ``[address, address+size)``."""
        line_bytes = self.config.line_bytes
        first = address - (address % line_bytes)
        for line_address in range(first, address + size, line_bytes):
            self.access(line_address)
        # warming should not count against the statistics
        self.hits = 0
        self.misses = 0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0
