"""RV64I + RV64M instruction definitions and executable semantics.

Each instruction is described by an :class:`InstrSpec` holding its
assembly format, binary encoding fields, timing class and an ``execute``
function.  Specs are collected into an :class:`InstructionSet`, which is
the unit the assembler, encoder, decoder and machine all consume.  The
base RV64IM set lives here; the paper's custom instructions register
their own specs from :mod:`repro.core.ise` into derived sets, keeping the
substrate independent of the contribution built on top of it.

Only the integer subset relevant to MPI arithmetic is implemented (the
paper's kernels use no floating point, atomics or CSRs); this covers the
complete RV64I base integer ISA plus the M extension.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, TYPE_CHECKING

from repro.errors import EncodingError, SimulationError
from repro.rv64.bits import (
    MASK64,
    mulh64,
    mulhsu64,
    mulhu64,
    s32,
    s64,
    sign_extend,
    sra64,
    u32,
    u64,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rv64.machine import MachineState

# Timing classes consumed by the pipeline model.
KIND_ALU = "alu"
KIND_MUL = "mul"
KIND_DIV = "div"
KIND_LOAD = "load"
KIND_STORE = "store"
KIND_BRANCH = "branch"
KIND_JUMP = "jump"
KIND_SYSTEM = "system"

# Assembly/encoding formats.
FMT_R = "R"          # op rd, rs1, rs2
FMT_R4 = "R4"        # op rd, rs1, rs2, rs3          (custom MAC format)
FMT_I = "I"          # op rd, rs1, imm
FMT_I_SHIFT = "IS"   # op rd, rs1, shamt6
FMT_LOAD = "LD"      # op rd, imm(rs1)
FMT_S = "S"          # op rs2, imm(rs1)
FMT_B = "B"          # op rs1, rs2, label/offset
FMT_U = "U"          # op rd, imm20
FMT_J = "J"          # op rd, label/offset
FMT_RIA = "RIA"      # op rd, rs1, rs2, imm          (sraiadd format)
FMT_NONE = "N"       # op


@dataclass(frozen=True)
class Instruction:
    """A decoded/assembled instruction instance.

    Register fields are architectural indices (0-31); ``imm`` is a plain
    signed Python integer (already sign-extended where applicable).
    """

    mnemonic: str
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    rs3: int = 0
    imm: int = 0

    def __str__(self) -> str:
        from repro.rv64.registers import register_name as rn

        m = self.mnemonic
        return {
            FMT_R: lambda: f"{m} {rn(self.rd)}, {rn(self.rs1)}, {rn(self.rs2)}",
            FMT_R4: lambda: (
                f"{m} {rn(self.rd)}, {rn(self.rs1)}, "
                f"{rn(self.rs2)}, {rn(self.rs3)}"
            ),
            FMT_I: lambda: f"{m} {rn(self.rd)}, {rn(self.rs1)}, {self.imm}",
            FMT_I_SHIFT: lambda: (
                f"{m} {rn(self.rd)}, {rn(self.rs1)}, {self.imm}"
            ),
            FMT_LOAD: lambda: f"{m} {rn(self.rd)}, {self.imm}({rn(self.rs1)})",
            FMT_S: lambda: f"{m} {rn(self.rs2)}, {self.imm}({rn(self.rs1)})",
            FMT_B: lambda: f"{m} {rn(self.rs1)}, {rn(self.rs2)}, {self.imm}",
            FMT_U: lambda: f"{m} {rn(self.rd)}, {self.imm:#x}",
            FMT_J: lambda: f"{m} {rn(self.rd)}, {self.imm}",
            FMT_RIA: lambda: (
                f"{m} {rn(self.rd)}, {rn(self.rs1)}, "
                f"{rn(self.rs2)}, {self.imm}"
            ),
            FMT_NONE: lambda: m,
        }.get(_lookup_format(m), lambda: m)()


def _lookup_format(mnemonic: str) -> str:
    spec = _GLOBAL_SPECS.get(mnemonic)
    return spec.fmt if spec else FMT_NONE


ExecuteFn = Callable[["MachineState", Instruction], None]


@dataclass(frozen=True)
class InstrSpec:
    """Static description of one machine instruction."""

    mnemonic: str
    fmt: str
    kind: str
    execute: ExecuteFn
    opcode: int
    funct3: int | None = None
    funct7: int | None = None
    funct2: int | None = None  # R4-type selector (bits 26:25)
    description: str = ""

    @property
    def reads(self) -> tuple[str, ...]:
        """Names of source-register fields this format consumes."""
        return {
            FMT_R: ("rs1", "rs2"),
            FMT_R4: ("rs1", "rs2", "rs3"),
            FMT_I: ("rs1",),
            FMT_I_SHIFT: ("rs1",),
            FMT_LOAD: ("rs1",),
            FMT_S: ("rs1", "rs2"),
            FMT_B: ("rs1", "rs2"),
            FMT_U: (),
            FMT_J: (),
            FMT_RIA: ("rs1", "rs2"),
            FMT_NONE: (),
        }[self.fmt]

    @property
    def writes_rd(self) -> bool:
        return self.fmt in (
            FMT_R, FMT_R4, FMT_I, FMT_I_SHIFT, FMT_LOAD, FMT_U, FMT_J,
            FMT_RIA,
        )


class InstructionSet:
    """A named collection of instruction specs (an ISA variant)."""

    def __init__(self, name: str, specs: Iterable[InstrSpec] = ()) -> None:
        self.name = name
        self._specs: dict[str, InstrSpec] = {}
        for spec in specs:
            self.add(spec)

    def add(self, spec: InstrSpec) -> None:
        if spec.mnemonic in self._specs:
            raise EncodingError(
                f"duplicate mnemonic {spec.mnemonic!r} in ISA {self.name!r}"
            )
        self._specs[spec.mnemonic] = spec

    def extend(self, name: str, specs: Iterable[InstrSpec]) -> InstructionSet:
        """Return a new set containing this set's specs plus *specs*."""
        merged = InstructionSet(name, self._specs.values())
        for spec in specs:
            merged.add(spec)
        return merged

    def __contains__(self, mnemonic: str) -> bool:
        return mnemonic in self._specs

    def __getitem__(self, mnemonic: str) -> InstrSpec:
        try:
            return self._specs[mnemonic]
        except KeyError:
            raise EncodingError(
                f"unknown mnemonic {mnemonic!r} in ISA {self.name!r}"
            ) from None

    def get(self, mnemonic: str) -> InstrSpec | None:
        return self._specs.get(mnemonic)

    @property
    def mnemonics(self) -> tuple[str, ...]:
        return tuple(self._specs)

    def specs(self) -> tuple[InstrSpec, ...]:
        return tuple(self._specs.values())


# ---------------------------------------------------------------------------
# Semantics
# ---------------------------------------------------------------------------
# Each function mutates the machine state.  The machine sets
# ``state.next_pc = state.pc + 4`` before dispatch; control-flow
# instructions overwrite it.


def _exec_lui(state: MachineState, ins: Instruction) -> None:
    # RV64: the 32-bit value imm<<12 is sign-extended to 64 bits.
    state.regs.write(ins.rd, u64(s32(ins.imm << 12)))


def _exec_auipc(state: MachineState, ins: Instruction) -> None:
    state.regs.write(ins.rd, u64(state.pc + s32(ins.imm << 12)))


def _exec_jal(state: MachineState, ins: Instruction) -> None:
    state.regs.write(ins.rd, u64(state.pc + 4))
    state.next_pc = u64(state.pc + ins.imm)


def _exec_jalr(state: MachineState, ins: Instruction) -> None:
    target = u64(state.regs.read(ins.rs1) + ins.imm) & ~1
    state.regs.write(ins.rd, u64(state.pc + 4))
    state.next_pc = target


def _branch(cond: Callable[[int, int], bool]) -> ExecuteFn:
    def execute(state: MachineState, ins: Instruction) -> None:
        if cond(state.regs.read(ins.rs1), state.regs.read(ins.rs2)):
            state.next_pc = u64(state.pc + ins.imm)
            state.branch_taken = True

    return execute


def _load(size: int, signed: bool) -> ExecuteFn:
    def execute(state: MachineState, ins: Instruction) -> None:
        address = u64(state.regs.read(ins.rs1) + ins.imm)
        state.regs.write(ins.rd, u64(state.mem.load(address, size,
                                                    signed=signed)))
        state.last_address = address

    return execute


def _store(size: int) -> ExecuteFn:
    def execute(state: MachineState, ins: Instruction) -> None:
        address = u64(state.regs.read(ins.rs1) + ins.imm)
        state.mem.store(address, state.regs.read(ins.rs2), size)
        state.last_address = address

    return execute


def _alu_imm(op: Callable[[int, int], int]) -> ExecuteFn:
    def execute(state: MachineState, ins: Instruction) -> None:
        state.regs.write(ins.rd, op(state.regs.read(ins.rs1), ins.imm))

    return execute


def _alu_reg(op: Callable[[int, int], int]) -> ExecuteFn:
    def execute(state: MachineState, ins: Instruction) -> None:
        state.regs.write(
            ins.rd, op(state.regs.read(ins.rs1), state.regs.read(ins.rs2))
        )

    return execute


def _exec_ecall(state: MachineState, ins: Instruction) -> None:
    raise SimulationError("ecall executed (no execution environment)")


def _exec_ebreak(state: MachineState, ins: Instruction) -> None:
    state.halted = True


def _exec_fence(state: MachineState, ins: Instruction) -> None:
    return None  # memory model is sequentially consistent here


def _div(a: int, b: int) -> int:
    sa, sb = s64(a), s64(b)
    if sb == 0:
        return MASK64
    if sa == -(1 << 63) and sb == -1:
        return u64(sa)
    quotient = abs(sa) // abs(sb)
    return u64(-quotient if (sa < 0) != (sb < 0) else quotient)


def _divu(a: int, b: int) -> int:
    return MASK64 if b == 0 else a // b


def _rem(a: int, b: int) -> int:
    sa, sb = s64(a), s64(b)
    if sb == 0:
        return u64(sa)
    if sa == -(1 << 63) and sb == -1:
        return 0
    remainder = abs(sa) % abs(sb)
    return u64(-remainder if sa < 0 else remainder)


def _remu(a: int, b: int) -> int:
    return a if b == 0 else a % b


def _divw(a: int, b: int) -> int:
    sa, sb = s32(a), s32(b)
    if sb == 0:
        return MASK64
    if sa == -(1 << 31) and sb == -1:
        return u64(sa)
    quotient = abs(sa) // abs(sb)
    return u64(s32(-quotient if (sa < 0) != (sb < 0) else quotient))


def _divuw(a: int, b: int) -> int:
    ua, ub = u32(a), u32(b)
    return MASK64 if ub == 0 else u64(s32(ua // ub))


def _remw(a: int, b: int) -> int:
    sa, sb = s32(a), s32(b)
    if sb == 0:
        return u64(sa)
    if sa == -(1 << 31) and sb == -1:
        return 0
    remainder = abs(sa) % abs(sb)
    return u64(s32(-remainder if sa < 0 else remainder))


def _remuw(a: int, b: int) -> int:
    ua, ub = u32(a), u32(b)
    return u64(s32(ua)) if ub == 0 else u64(s32(ua % ub))


def _spec(
    mnemonic: str,
    fmt: str,
    kind: str,
    execute: ExecuteFn,
    opcode: int,
    funct3: int | None = None,
    funct7: int | None = None,
    description: str = "",
) -> InstrSpec:
    return InstrSpec(
        mnemonic=mnemonic,
        fmt=fmt,
        kind=kind,
        execute=execute,
        opcode=opcode,
        funct3=funct3,
        funct7=funct7,
        description=description,
    )


# Opcode constants (RISC-V spec, Table 24.1).
OP_LUI = 0b0110111
OP_AUIPC = 0b0010111
OP_JAL = 0b1101111
OP_JALR = 0b1100111
OP_BRANCH = 0b1100011
OP_LOAD = 0b0000011
OP_STORE = 0b0100011
OP_IMM = 0b0010011
OP_IMM32 = 0b0011011
OP_REG = 0b0110011
OP_REG32 = 0b0111011
OP_MISC_MEM = 0b0001111
OP_SYSTEM = 0b1110011
# Custom opcode space used by the paper's ISEs.
OP_CUSTOM_MADD = 0b1111011   # R4-type madd*/cadd (Figures 1-3)
OP_CUSTOM_SRAIADD = 0b0101011  # sraiadd (Figure 3)


def _base_specs() -> list[InstrSpec]:
    specs: list[InstrSpec] = [
        _spec("lui", FMT_U, KIND_ALU, _exec_lui, OP_LUI,
              description="load upper immediate"),
        _spec("auipc", FMT_U, KIND_ALU, _exec_auipc, OP_AUIPC,
              description="add upper immediate to pc"),
        _spec("jal", FMT_J, KIND_JUMP, _exec_jal, OP_JAL,
              description="jump and link"),
        _spec("jalr", FMT_I, KIND_JUMP, _exec_jalr, OP_JALR, funct3=0b000,
              description="jump and link register"),
        _spec("beq", FMT_B, KIND_BRANCH,
              _branch(lambda a, b: a == b), OP_BRANCH, funct3=0b000),
        _spec("bne", FMT_B, KIND_BRANCH,
              _branch(lambda a, b: a != b), OP_BRANCH, funct3=0b001),
        _spec("blt", FMT_B, KIND_BRANCH,
              _branch(lambda a, b: s64(a) < s64(b)), OP_BRANCH, funct3=0b100),
        _spec("bge", FMT_B, KIND_BRANCH,
              _branch(lambda a, b: s64(a) >= s64(b)), OP_BRANCH, funct3=0b101),
        _spec("bltu", FMT_B, KIND_BRANCH,
              _branch(lambda a, b: a < b), OP_BRANCH, funct3=0b110),
        _spec("bgeu", FMT_B, KIND_BRANCH,
              _branch(lambda a, b: a >= b), OP_BRANCH, funct3=0b111),
        # Loads.
        _spec("lb", FMT_LOAD, KIND_LOAD, _load(1, True), OP_LOAD,
              funct3=0b000),
        _spec("lh", FMT_LOAD, KIND_LOAD, _load(2, True), OP_LOAD,
              funct3=0b001),
        _spec("lw", FMT_LOAD, KIND_LOAD, _load(4, True), OP_LOAD,
              funct3=0b010),
        _spec("ld", FMT_LOAD, KIND_LOAD, _load(8, False), OP_LOAD,
              funct3=0b011),
        _spec("lbu", FMT_LOAD, KIND_LOAD, _load(1, False), OP_LOAD,
              funct3=0b100),
        _spec("lhu", FMT_LOAD, KIND_LOAD, _load(2, False), OP_LOAD,
              funct3=0b101),
        _spec("lwu", FMT_LOAD, KIND_LOAD, _load(4, False), OP_LOAD,
              funct3=0b110),
        # Stores.
        _spec("sb", FMT_S, KIND_STORE, _store(1), OP_STORE, funct3=0b000),
        _spec("sh", FMT_S, KIND_STORE, _store(2), OP_STORE, funct3=0b001),
        _spec("sw", FMT_S, KIND_STORE, _store(4), OP_STORE, funct3=0b010),
        _spec("sd", FMT_S, KIND_STORE, _store(8), OP_STORE, funct3=0b011),
        # Register-immediate ALU.
        _spec("addi", FMT_I, KIND_ALU,
              _alu_imm(lambda a, i: u64(a + i)), OP_IMM, funct3=0b000),
        _spec("slti", FMT_I, KIND_ALU,
              _alu_imm(lambda a, i: int(s64(a) < i)), OP_IMM, funct3=0b010),
        _spec("sltiu", FMT_I, KIND_ALU,
              _alu_imm(lambda a, i: int(a < u64(i))), OP_IMM, funct3=0b011),
        _spec("xori", FMT_I, KIND_ALU,
              _alu_imm(lambda a, i: u64(a ^ i)), OP_IMM, funct3=0b100),
        _spec("ori", FMT_I, KIND_ALU,
              _alu_imm(lambda a, i: u64(a | u64(i))), OP_IMM, funct3=0b110),
        _spec("andi", FMT_I, KIND_ALU,
              _alu_imm(lambda a, i: u64(a & u64(i))), OP_IMM, funct3=0b111),
        _spec("slli", FMT_I_SHIFT, KIND_ALU,
              _alu_imm(lambda a, i: u64(a << (i & 63))), OP_IMM,
              funct3=0b001, funct7=0b0000000),
        _spec("srli", FMT_I_SHIFT, KIND_ALU,
              _alu_imm(lambda a, i: a >> (i & 63)), OP_IMM,
              funct3=0b101, funct7=0b0000000),
        _spec("srai", FMT_I_SHIFT, KIND_ALU,
              _alu_imm(sra64), OP_IMM, funct3=0b101, funct7=0b0100000),
        # Register-register ALU.
        _spec("add", FMT_R, KIND_ALU,
              _alu_reg(lambda a, b: u64(a + b)), OP_REG,
              funct3=0b000, funct7=0b0000000),
        _spec("sub", FMT_R, KIND_ALU,
              _alu_reg(lambda a, b: u64(a - b)), OP_REG,
              funct3=0b000, funct7=0b0100000),
        _spec("sll", FMT_R, KIND_ALU,
              _alu_reg(lambda a, b: u64(a << (b & 63))), OP_REG,
              funct3=0b001, funct7=0b0000000),
        _spec("slt", FMT_R, KIND_ALU,
              _alu_reg(lambda a, b: int(s64(a) < s64(b))), OP_REG,
              funct3=0b010, funct7=0b0000000),
        _spec("sltu", FMT_R, KIND_ALU,
              _alu_reg(lambda a, b: int(a < b)), OP_REG,
              funct3=0b011, funct7=0b0000000),
        _spec("xor", FMT_R, KIND_ALU,
              _alu_reg(lambda a, b: a ^ b), OP_REG,
              funct3=0b100, funct7=0b0000000),
        _spec("srl", FMT_R, KIND_ALU,
              _alu_reg(lambda a, b: a >> (b & 63)), OP_REG,
              funct3=0b101, funct7=0b0000000),
        _spec("sra", FMT_R, KIND_ALU,
              _alu_reg(lambda a, b: sra64(a, b & 63)), OP_REG,
              funct3=0b101, funct7=0b0100000),
        _spec("or", FMT_R, KIND_ALU,
              _alu_reg(lambda a, b: a | b), OP_REG,
              funct3=0b110, funct7=0b0000000),
        _spec("and", FMT_R, KIND_ALU,
              _alu_reg(lambda a, b: a & b), OP_REG,
              funct3=0b111, funct7=0b0000000),
        # RV64I 32-bit word ops.
        _spec("addiw", FMT_I, KIND_ALU,
              _alu_imm(lambda a, i: u64(s32(a + i))), OP_IMM32,
              funct3=0b000),
        _spec("slliw", FMT_I_SHIFT, KIND_ALU,
              _alu_imm(lambda a, i: u64(s32(a << (i & 31)))), OP_IMM32,
              funct3=0b001, funct7=0b0000000),
        _spec("srliw", FMT_I_SHIFT, KIND_ALU,
              _alu_imm(lambda a, i: u64(s32(u32(a) >> (i & 31)))), OP_IMM32,
              funct3=0b101, funct7=0b0000000),
        _spec("sraiw", FMT_I_SHIFT, KIND_ALU,
              _alu_imm(lambda a, i: u64(s32(a) >> (i & 31))), OP_IMM32,
              funct3=0b101, funct7=0b0100000),
        _spec("addw", FMT_R, KIND_ALU,
              _alu_reg(lambda a, b: u64(s32(a + b))), OP_REG32,
              funct3=0b000, funct7=0b0000000),
        _spec("subw", FMT_R, KIND_ALU,
              _alu_reg(lambda a, b: u64(s32(a - b))), OP_REG32,
              funct3=0b000, funct7=0b0100000),
        _spec("sllw", FMT_R, KIND_ALU,
              _alu_reg(lambda a, b: u64(s32(a << (b & 31)))), OP_REG32,
              funct3=0b001, funct7=0b0000000),
        _spec("srlw", FMT_R, KIND_ALU,
              _alu_reg(lambda a, b: u64(s32(u32(a) >> (b & 31)))), OP_REG32,
              funct3=0b101, funct7=0b0000000),
        _spec("sraw", FMT_R, KIND_ALU,
              _alu_reg(lambda a, b: u64(s32(a) >> (b & 31))), OP_REG32,
              funct3=0b101, funct7=0b0100000),
        # System.
        _spec("ecall", FMT_NONE, KIND_SYSTEM, _exec_ecall, OP_SYSTEM,
              funct3=0b000, funct7=0b0000000),
        _spec("ebreak", FMT_NONE, KIND_SYSTEM, _exec_ebreak, OP_SYSTEM,
              funct3=0b000, funct7=0b0000001),
        _spec("fence", FMT_NONE, KIND_SYSTEM, _exec_fence, OP_MISC_MEM,
              funct3=0b000),
        # RV64M.
        _spec("mul", FMT_R, KIND_MUL,
              _alu_reg(lambda a, b: u64(a * b)), OP_REG,
              funct3=0b000, funct7=0b0000001,
              description="low 64 bits of product"),
        _spec("mulh", FMT_R, KIND_MUL,
              _alu_reg(mulh64), OP_REG, funct3=0b001, funct7=0b0000001),
        _spec("mulhsu", FMT_R, KIND_MUL,
              _alu_reg(mulhsu64), OP_REG, funct3=0b010, funct7=0b0000001),
        _spec("mulhu", FMT_R, KIND_MUL,
              _alu_reg(mulhu64), OP_REG, funct3=0b011, funct7=0b0000001,
              description="high 64 bits of unsigned product"),
        _spec("div", FMT_R, KIND_DIV, _alu_reg(_div), OP_REG,
              funct3=0b100, funct7=0b0000001),
        _spec("divu", FMT_R, KIND_DIV, _alu_reg(_divu), OP_REG,
              funct3=0b101, funct7=0b0000001),
        _spec("rem", FMT_R, KIND_DIV, _alu_reg(_rem), OP_REG,
              funct3=0b110, funct7=0b0000001),
        _spec("remu", FMT_R, KIND_DIV, _alu_reg(_remu), OP_REG,
              funct3=0b111, funct7=0b0000001),
        _spec("mulw", FMT_R, KIND_MUL,
              _alu_reg(lambda a, b: u64(s32(a * b))), OP_REG32,
              funct3=0b000, funct7=0b0000001),
        _spec("divw", FMT_R, KIND_DIV, _alu_reg(_divw), OP_REG32,
              funct3=0b100, funct7=0b0000001),
        _spec("divuw", FMT_R, KIND_DIV, _alu_reg(_divuw), OP_REG32,
              funct3=0b101, funct7=0b0000001),
        _spec("remw", FMT_R, KIND_DIV, _alu_reg(_remw), OP_REG32,
              funct3=0b110, funct7=0b0000001),
        _spec("remuw", FMT_R, KIND_DIV, _alu_reg(_remuw), OP_REG32,
              funct3=0b111, funct7=0b0000001),
    ]
    return specs


BASE_ISA = InstructionSet("rv64im", _base_specs())

# A flat mnemonic -> spec view used for stringification regardless of ISA.
_GLOBAL_SPECS: dict[str, InstrSpec] = {
    s.mnemonic: s for s in BASE_ISA.specs()
}


def register_global_spec(spec: InstrSpec) -> None:
    """Record *spec* in the global stringification table (idempotent)."""
    _GLOBAL_SPECS.setdefault(spec.mnemonic, spec)


def make_sign_extender(width: int) -> Callable[[int], int]:
    """Convenience factory used by decoders: sign-extend *width* bits."""
    return lambda v: sign_extend(v, width)
