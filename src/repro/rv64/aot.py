"""AOT whole-kernel compilation: fuse a trace into limb arithmetic.

The fourth (fastest) execution tier.  The jit tier
(:mod:`repro.rv64.jit`) already collapsed per-step closure dispatch,
but it still emits **one Python statement per traced instruction**:
every ``maddlu``/``maddhu``/carry chain pays a statement boundary, a
local-variable store and (for loads/stores) a page branch, even though
the whole kernel is one pure dataflow graph over the operand values.

:func:`compile_aot_entry` removes that too.  It *symbolically executes*
the replay trace over expression nodes instead of integers:

* the operand buffers become whole-operand atoms (``v0``, ``v1``);
  ``ld`` from an operand span folds into the limb-extraction expression
  ``(v0 >> bits*k) & mask``, ``ld`` from the (write-once) constant pool
  folds into the concrete constant, and ``sd``/``ld`` pairs within the
  run are store-forwarded symbolically — **no memory traffic at all**;
* every ALU/ISE instruction applies its expression template to the
  operand *nodes*, constant-folding wherever all inputs are static, so
  address arithmetic, ``lui``/``auipc`` chains and mask setup vanish
  from the generated code;
* the surviving dataflow — the multiply-accumulate spine of the kernel
  — is emitted as a handful of fused wide-int expressions (common
  subexpressions materialise as temporaries, deep chains are cut at a
  depth cap to stay inside CPython's parser limits);
* the full 32-register writeback, architectural ``pc``/``halted`` and
  the trace's **precomputed static cycle accounting** are attached
  verbatim, so the differential suite's register-file comparison and
  the golden cycle snapshot hold bit-for-bit (the same contract as the
  jit tier, see ``tests/differential/``).

Expression semantics come from the *same* template table as the jit
tier (:data:`repro.rv64.jit._ALU_R_EXPR` / ``_ALU_I_EXPR`` are imported,
not re-typed) and extension packages register theirs via
:func:`register_expr` — one algebra, three tiers, no drift.  Anything
without a template falls back to the *extracted* interpreter ``op``
lambda bound into the namespace (correct, but it marks the artifact
non-persistable: a bound lambda cannot round-trip through the disk
cache).

:func:`compile_aot` is the machine-level variant behind
``Machine.run(engine="aot")``: same symbolic core, but memory accesses
stay *runtime effects* (emitted in program order against the machine's
real memory), so the generic runner paths — hardened mode, fault
hooks, histogram collection — read results out of memory exactly as
they do for every other engine.

Compiled entry thunks serialise to **source text plus static costs**;
:mod:`repro.rv64.artifacts` persists them on disk keyed by (kernel,
modulus, pipeline, code hash) and :func:`bind_entry_source` re-binds a
loaded artifact to a fresh machine without re-tracing — the warm-start
path of ``repro serve`` and the shard scheduler's pre-fork warmup.

Compilation *refuses* with :class:`AotError` (``reason`` is one of
:data:`AotError.REASONS`) whenever whole-kernel fusion cannot be proven
exact: no replay trace, an instruction without a template or extracted
lambda, a data-dependent address, a memory access outside the
forwardable regions, or a codegen failure.  Callers demote one rung
down the aot → jit → replay → interpreter ladder
(see ``docs/ROBUSTNESS.md``).
"""

from __future__ import annotations

import re
import sys
from collections import Counter
from dataclasses import dataclass
from typing import Callable, TYPE_CHECKING

from repro.errors import SimulationError
from repro.rv64.bits import MASK64, s32, u64
from repro.rv64.isa import FMT_I, FMT_I_SHIFT, FMT_R
from repro.rv64.jit import _ALU_I_EXPR, _ALU_R_EXPR
from repro.rv64.machine import DEFAULT_STACK_TOP, HALT_ADDRESS
from repro.rv64.replay import _extract_alu_op

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rv64.machine import Machine


class AotError(SimulationError):
    """The trace cannot be fused into a whole-kernel aot function.

    ``reason`` is a short machine-readable code used by telemetry's
    ``aot_rejects_total{reason=...}`` counter; the caller demotes to
    the jit tier (which may itself demote further down the ladder).
    """

    code = "aot"

    #: Every reason aot compilation can refuse with (mirrored by the
    #: demotion tests in ``tests/test_replay_fallback.py``).
    REASONS = ("not_replayable", "unsupported_op", "dynamic_address",
               "unsupported_access", "codegen_error")

    def __init__(self, message: str, *, reason: str = "other") -> None:
        super().__init__(message)
        self.reason = reason


#: Run-level demotion reasons recorded by ``aot_demotions_total``:
#: the compile refusals surface as ``not_compilable`` plus the same
#: situational demotions the jit tier knows.
DEMOTION_REASONS = ("not_compilable", "trace_hooks", "no_setup_return")


# ---------------------------------------------------------------------------
# Expression nodes
# ---------------------------------------------------------------------------

#: Emitted chains of single-use nodes are cut into temporaries at this
#: nesting depth: CPython's parser and its recursive expression
#: evaluator both dislike thousand-deep parenthesis towers.
_DEPTH_CAP = 24

#: Recursion headroom for rendering very long dependence chains (one
#: temporary materialisation per node still recurses through the
#: emitter); RecursionError beyond this demotes to the jit tier.
_RECURSION_LIMIT = 10_000

_FOLD_GLOBALS = {"__builtins__": {}, "M": MASK64}


class _Node:
    """One SSA value: a constant, an input atom, or an operation.

    ``template`` is a positional format string (``"({0} + {1}) & M"``)
    over ``children``; duplicate children encode multiplicity.  Exactly
    one of (``const``, ``name``, ``template``) is set.
    """

    __slots__ = ("template", "children", "const", "name")

    def __init__(self, template, children, const, name) -> None:
        self.template = template
        self.children = children
        self.const = const
        self.name = name


def _const(value: int) -> _Node:
    return _Node(None, (), value, None)


def _atom(name: str) -> _Node:
    return _Node(None, (), None, name)


def _lit(value: int) -> str:
    """Literal rendering (hex above 16 keeps masks/addresses legible)."""
    return hex(value) if value >= 16 else repr(value)


def _op(template: str, children: tuple) -> _Node:
    """Operation node with constant folding over all-static inputs."""
    for child in children:
        if child.const is None:
            return _Node(template, children, None, None)
    rendered = template.format(*[_lit(c.const) for c in children])
    try:
        value = eval(rendered, dict(_FOLD_GLOBALS))
    except Exception as exc:  # pragma: no cover - templates are total
        raise AotError(
            f"constant fold of {rendered!r} failed: {exc}",
            reason="codegen_error",
        ) from exc
    return _const(value)


# ---------------------------------------------------------------------------
# Expression registry (shared algebra with the jit templates)
# ---------------------------------------------------------------------------

#: ``mnemonic -> (kind, expr)``; kind is one of ``"r"`` ({a}/{b}),
#: ``"i"`` ({a}/{imm}/{uimm}/{sh}), ``"r4"`` ({a}/{b}/{c}),
#: ``"ria"`` ({a}/{sb}/{sh}).  ``{sa}``/``{sb}`` expand to the signed
#: reinterpretation of {a}/{b} before positionalisation.
_EXPRS: dict[str, tuple[str, str]] = {}

_EXPR_KINDS = ("r", "i", "r4", "ria")


def register_expr(mnemonic: str, kind: str, expr: str) -> None:
    """Register an aot expression for *mnemonic* (idempotent).

    Extension packages (e.g. :mod:`repro.core.ise`) use this to fuse
    their custom instructions into the dataflow graph; unregistered
    mnemonics fall back to the extracted interpreter lambda (one call
    per instruction, and the artifact becomes non-persistable), so
    registration is a performance *and* cacheability optimisation.
    """
    if kind not in _EXPR_KINDS:
        raise AotError(f"unknown expression kind {kind!r}",
                       reason="codegen_error")
    _EXPRS.setdefault(mnemonic, (kind, expr))


for _mnemonic, _expr in _ALU_R_EXPR.items():
    register_expr(_mnemonic, "r", _expr)
for _mnemonic, _expr in _ALU_I_EXPR.items():
    register_expr(_mnemonic, "i", _expr)
# addiw shows up in generated address arithmetic on some variants; its
# sign-extended 32-bit wrap keeps the artifact persistable where the
# extracted-lambda fallback would not.
register_expr(
    "addiw", "i",
    "(((({a} + {imm}) & 0xffffffff) ^ 0x80000000) - 0x80000000) & M")

_SIGNED_A = "({a} - (({a} >> 63) << 64))"
_SIGNED_B = "({b} - (({b} >> 63) << 64))"

_FIELD_RE = re.compile(r"\{(\w+)\}")


def _build_expr(expr: str, operands: dict, scalars: dict) -> _Node:
    """Positionalise *expr* over operand nodes and scalar literals."""
    expr = expr.replace("{sa}", _SIGNED_A).replace("{sb}", _SIGNED_B)
    children: list[_Node] = []

    def substitute(match: re.Match) -> str:
        field = match.group(1)
        node = operands.get(field)
        if node is not None:
            children.append(node)
            return "{%d}" % (len(children) - 1)
        value = scalars[field]
        return str(value) if value >= 0 else f"({value})"

    template = _FIELD_RE.sub(substitute, expr)
    return _op(template, tuple(children))


# ---------------------------------------------------------------------------
# Memory models
# ---------------------------------------------------------------------------

class _ConcreteMemory:
    """Compile-time memory for the fused entry thunk.

    Stores are forwarded symbolically (``{address: node}``); loads
    resolve to a forwarded store, a limb extraction from an operand
    atom, or a concrete constant from the write-once constant pool.
    Anything else refuses: a data-dependent address, a sub-word or
    misaligned access, or a read of memory whose content varies between
    runs (scratch before its first store, the previous run's result).
    """

    def __init__(self, mem, arg_plan, operand_atoms, bits: int,
                 const_window: tuple[int, int]) -> None:
        self._mem = mem
        self._spans = tuple(
            (address, limbs) for address, limbs, _reg in arg_plan)
        self._operands = tuple(operand_atoms)
        self._bits = bits
        self._mask = (1 << bits) - 1
        self._const_base, self._const_size = const_window
        self.stores: dict[int, _Node] = {}

    def _address(self, node: _Node, what: str) -> int:
        if node.const is None:
            raise AotError(
                f"{what} address is data-dependent; whole-kernel "
                f"fusion needs static addressing",
                reason="dynamic_address",
            )
        address = node.const
        if address & 7:
            raise AotError(
                f"misaligned {what} at {address:#x}",
                reason="unsupported_access",
            )
        return address

    def load(self, address_node: _Node, size: int, signed: bool,
             rd: int) -> _Node:
        if size != 8 or signed:
            raise AotError(
                f"{size}-byte load: only aligned ld/sd fuse",
                reason="unsupported_access",
            )
        address = self._address(address_node, "load")
        forwarded = self.stores.get(address)
        if forwarded is not None:
            return forwarded
        for index, (base, limbs) in enumerate(self._spans):
            if base <= address < base + 8 * limbs:
                shift = self._bits * ((address - base) // 8)
                atom = self._operands[index]
                if shift == 0:
                    return _op(f"{{0}} & {_lit(self._mask)}", (atom,))
                return _op(
                    f"({{0}} >> {shift}) & {_lit(self._mask)}", (atom,))
        if (self._const_base <= address
                and address + 8 <= self._const_base + self._const_size):
            return _const(self._mem.load(address, 8))
        raise AotError(
            f"load at {address:#x} outside the operand spans, the "
            f"constant pool, and the run's own stores (content is not "
            f"a static property of the kernel)",
            reason="unsupported_access",
        )

    def store(self, address_node: _Node, value_node: _Node,
              size: int) -> None:
        if size != 8:
            raise AotError(
                f"{size}-byte store: only aligned ld/sd fuse",
                reason="unsupported_access",
            )
        address = self._address(address_node, "store")
        if (self._const_base <= address
                < self._const_base + self._const_size):
            raise AotError(
                f"store into the constant pool at {address:#x} breaks "
                f"the write-once assumption concrete reads rely on",
                reason="unsupported_access",
            )
        self.stores[address] = value_node

    def result_limbs(self, result_addr: int, out_limbs: int) -> list:
        nodes = []
        for index in range(out_limbs):
            node = self.stores.get(result_addr + 8 * index)
            if node is None:
                raise AotError(
                    f"result limb {index} is never stored; cannot "
                    f"prove the read-out",
                    reason="unsupported_access",
                )
            nodes.append(node)
        return nodes


class _RuntimeMemory:
    """Program-order memory effects for the machine-level variant.

    Loads and stores stay *runtime* statements against the machine's
    real memory (``effects`` is consumed in order by the emitter);
    loads define fresh SSA atoms, so later register dataflow is exact
    regardless of interleaved stores.
    """

    def __init__(self) -> None:
        self.effects: list[tuple] = []
        self._loads = 0

    def load(self, address_node: _Node, size: int, signed: bool,
             rd: int) -> _Node | None:
        if rd == 0:
            self.effects.append(
                ("load", address_node, size, signed, None))
            return None
        name = f"_m{self._loads}"
        self._loads += 1
        self.effects.append(("load", address_node, size, signed, name))
        return _atom(name)

    def store(self, address_node: _Node, value_node: _Node,
              size: int) -> None:
        self.effects.append(("store", address_node, value_node, size))


# ---------------------------------------------------------------------------
# Symbolic execution
# ---------------------------------------------------------------------------

_LOAD_SIZES = {"ld": (8, False), "lb": (1, True), "lbu": (1, False),
               "lh": (2, True), "lhu": (2, False), "lw": (4, True),
               "lwu": (4, False)}
_STORE_SIZES = {"sd": 8, "sb": 1, "sh": 2, "sw": 4}


class _SymbolicRun:
    """Step the trace's instructions over expression nodes."""

    def __init__(self, regs: list, memory) -> None:
        self.regs = regs
        self.memory = memory
        self.calls: dict[str, Callable] = {}
        self.persistable = True

    def _write(self, rd: int, node: _Node) -> None:
        if rd != 0:  # x0 is hard-wired (replay drops these anyway)
            self.regs[rd] = node

    def _address_node(self, ins) -> _Node:
        base = self.regs[ins.rs1]
        if ins.imm == 0:
            return base
        return _op(f"({{0}} + {ins.imm}) & M", (base,))

    def _call(self, fn: Callable, children: tuple) -> _Node:
        if all(child.const is not None for child in children):
            return _const(fn(*[child.const for child in children]))
        self.persistable = False  # bound lambdas cannot round-trip
        name = f"_xop{len(self.calls)}"
        self.calls[name] = fn
        args = ", ".join("{%d}" % i for i in range(len(children)))
        return _op(f"{name}({args})", children)

    def step(self, pc: int, ins, spec) -> None:
        regs = self.regs
        mnemonic = ins.mnemonic
        if mnemonic == "lui":
            self._write(ins.rd, _const(u64(s32(ins.imm << 12))))
            return
        if mnemonic == "auipc":
            self._write(ins.rd, _const(u64(pc + s32(ins.imm << 12))))
            return
        load_shape = _LOAD_SIZES.get(mnemonic)
        if load_shape is not None:
            size, signed = load_shape
            node = self.memory.load(
                self._address_node(ins), size, signed, ins.rd)
            if node is not None:
                self._write(ins.rd, node)
            return
        store_size = _STORE_SIZES.get(mnemonic)
        if store_size is not None:
            self.memory.store(
                self._address_node(ins), regs[ins.rs2], store_size)
            return
        entry = _EXPRS.get(mnemonic)
        if entry is not None:
            kind, expr = entry
            if mnemonic == "addi" and ins.imm == 0:
                self._write(ins.rd, regs[ins.rs1])  # mv
                return
            if kind == "r":
                node = _build_expr(
                    expr, {"a": regs[ins.rs1], "b": regs[ins.rs2]}, {})
            elif kind == "i":
                node = _build_expr(
                    expr, {"a": regs[ins.rs1]},
                    {"imm": ins.imm, "uimm": u64(ins.imm),
                     "sh": ins.imm & 63})
            elif kind == "r4":
                node = _build_expr(
                    expr,
                    {"a": regs[ins.rs1], "b": regs[ins.rs2],
                     "c": regs[ins.rs3]}, {})
            else:  # "ria"
                node = _build_expr(
                    expr, {"a": regs[ins.rs1], "b": regs[ins.rs2]},
                    {"sh": ins.imm & 63})
            self._write(ins.rd, node)
            return
        # no template: bind the extracted interpreter lambda so the
        # fused function keeps interpreter semantics by construction
        op = _extract_alu_op(spec)
        if op is not None:
            if spec.fmt == FMT_R:
                node = self._call(op, (regs[ins.rs1], regs[ins.rs2]))
            elif spec.fmt in (FMT_I, FMT_I_SHIFT):
                node = self._call(op, (regs[ins.rs1], _const(ins.imm)))
            else:
                raise AotError(
                    f"no aot expression for {mnemonic} ({spec.fmt})",
                    reason="unsupported_op",
                )
            self._write(ins.rd, node)
            return
        raise AotError(
            f"no aot expression for {mnemonic} at {pc:#x}; "
            f"whole-kernel fusion cannot represent it",
            reason="unsupported_op",
        )


# ---------------------------------------------------------------------------
# Emission
# ---------------------------------------------------------------------------

def _count_uses(roots: list) -> dict[int, int]:
    """DAG edge counts from *roots* (each root occurrence is a use)."""
    uses: dict[int, int] = {}
    stack = list(roots)
    while stack:
        node = stack.pop()
        key = id(node)
        if key in uses:
            uses[key] += 1
            continue
        uses[key] = 1
        if node.children:
            stack.extend(node.children)
    return uses


class _Emitter:
    """Render nodes to statements: temps for shared/deep subtrees.

    Every inlined non-atom subexpression is parenthesised — templates
    embed children at arbitrary precedence (ternaries inside masked
    sums), so the parens are load-bearing, not cosmetic.
    """

    def __init__(self, uses: dict[int, int]) -> None:
        self.uses = uses
        self.names: dict[int, str] = {}
        self.lines: list[str] = []
        self._temps = 0

    def ref(self, node: _Node, depth: int = 0) -> str:
        if node.const is not None:
            return _lit(node.const)
        if node.name is not None:
            return node.name
        key = id(node)
        name = self.names.get(key)
        if name is not None:
            return name
        if self.uses.get(key, 1) > 1 or depth >= _DEPTH_CAP:
            expression = self._render(node, 0)
            name = f"_t{self._temps}"
            self._temps += 1
            self.names[key] = name
            self.lines.append(f"{name} = {expression}")
            return name
        return "(" + self._render(node, depth) + ")"

    def alias(self, node: _Node, name: str) -> None:
        """Make later references reuse an already-assigned local."""
        if node.const is None and node.name is None:
            self.names.setdefault(id(node), name)

    def _render(self, node: _Node, depth: int) -> str:
        parts = [self.ref(child, depth + 1) for child in node.children]
        return node.template.format(*parts)


def _emit_effects(emitter: _Emitter, effects: list) -> None:
    """Append the runtime load/store statements in program order."""
    for effect in effects:
        if effect[0] == "load":
            _tag, address_node, size, signed, name = effect
            address = emitter.ref(address_node)
            if name is None:  # rd == x0: load for trap semantics only
                suffix = ", signed=True" if signed else ""
                emitter.lines.append(f"load({address}, {size}{suffix})")
            elif size == 8:
                emitter.lines.append(f"{name} = load({address}, 8)")
            elif signed:
                emitter.lines.append(
                    f"{name} = load({address}, {size}, signed=True) & M")
            else:
                emitter.lines.append(
                    f"{name} = load({address}, {size})")
        else:
            _tag, address_node, value_node, size = effect
            address = emitter.ref(address_node)
            value = emitter.ref(value_node)
            emitter.lines.append(f"store({address}, {value}, {size})")


def _build(source: str, namespace: dict, *, tag: str,
           function: str) -> Callable:
    try:
        code = compile(source, f"<aot:{tag}>", "exec")
        scope = dict(namespace)
        exec(code, scope)
        return scope[function]
    except AotError:
        raise
    except Exception as exc:
        raise AotError(
            f"generated source for {tag} failed to build: {exc}",
            reason="codegen_error",
        ) from exc


class _deep_recursion:
    """Headroom for rendering long dependence chains, restored on exit."""

    def __enter__(self) -> None:
        self._prior = sys.getrecursionlimit()
        sys.setrecursionlimit(max(self._prior, _RECURSION_LIMIT))

    def __exit__(self, *_exc_info) -> None:
        sys.setrecursionlimit(self._prior)


# ---------------------------------------------------------------------------
# Compiled artifacts
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AotEntry:
    """One kernel fused into an entry thunk, plus its static cost.

    ``fn(*operands)`` returns ``(value, limbs, cycles, instructions)``
    or ``None`` (liveness guard tripped / operand out of range — the
    caller falls back to the generic path).  ``persistable`` is false
    when the source references namespace-bound lambdas that cannot
    round-trip through the on-disk artifact cache.
    """

    entry: int
    fn: Callable
    source: str
    persistable: bool
    cycles: int | None
    instructions_retired: int
    halts: bool
    exit_pc: int


@dataclass(frozen=True)
class AotFunction:
    """The machine-level fused function (``Machine.run(engine="aot")``).

    Mirrors :class:`~repro.rv64.jit.JitFunction`: ``fn(regs,
    stack_top)`` is memory-exact (runtime stores land in the machine's
    memory), and the trace's static cost/histogram ride along verbatim.
    """

    entry: int
    fn: Callable
    source: str
    namespace: dict
    instructions_retired: int
    cycles: int | None
    histogram: Counter
    halts: bool
    exit_pc: int


# ---------------------------------------------------------------------------
# Entry-thunk compilation (the KernelRunner fast path)
# ---------------------------------------------------------------------------

def _trace_or_refuse(machine: Machine, entry: int):
    trace = machine._trace_for(entry)
    if trace is None:
        raise AotError(
            f"no replay trace for entry {entry:#x}: the aot tier "
            f"fuses replay traces",
            reason="not_replayable",
        )
    if len(trace.step_instructions) != len(trace.steps):
        raise AotError(
            f"trace for {entry:#x} has no step/instruction alignment",
            reason="codegen_error",
        )
    return trace


def compile_aot_entry(
    machine: Machine,
    entry: int,
    *,
    arg_plan,
    result_reg: int,
    result_addr: int,
    out_limbs: int,
    radix,
    const_window: tuple[int, int],
    stack_top: int = DEFAULT_STACK_TOP,
) -> AotEntry:
    """Fuse the kernel at *entry* into one whole-kernel entry thunk.

    The generated function takes the operand *values* directly (no limb
    marshalling, no memory writes, no register zeroing loop), computes
    the result limbs as fused wide-int expressions, writes the full
    32-register architectural state back (so the differential suite's
    register-file comparison holds), sets ``pc``/``halted``, and
    returns the read-out with the trace's precomputed static cost.

    The liveness guard re-reads ``machine._aot_entry_cache`` on every
    call: poisoning or invalidation pops the entry, the thunk returns
    ``None``, and the caller demotes — the same eviction contract as
    the jit tier's per-call cache fetch.
    """
    trace = _trace_or_refuse(machine, entry)
    bits = radix.bits
    regs: list[_Node] = [_const(0)] * 32
    regs[1] = _const(HALT_ADDRESS)
    regs[2] = _const(stack_top)
    operand_atoms = []
    for index, (address, _limbs, reg_index) in enumerate(arg_plan):
        regs[reg_index] = _const(address)
        operand_atoms.append(_atom(f"v{index}"))
    regs[result_reg] = _const(result_addr)

    memory = _ConcreteMemory(
        machine.state.mem, arg_plan, operand_atoms, bits, const_window)
    run = _SymbolicRun(regs, memory)
    with _deep_recursion():
        try:
            for pc, ins, spec in trace.step_instructions:
                run.step(pc, ins, spec)
            limb_nodes = memory.result_limbs(result_addr, out_limbs)

            roots = list(limb_nodes)
            roots.extend(run.regs)
            emitter = _Emitter(_count_uses(roots))
            for index, node in enumerate(limb_nodes):
                emitter.lines.append(
                    f"_w{index} = {emitter.ref(node)}")
                emitter.alias(node, f"_w{index}")
            reg_refs = [emitter.ref(node) for node in run.regs]
        except RecursionError as exc:
            raise AotError(
                f"expression graph for {entry:#x} is too deep to "
                f"render",
                reason="codegen_error",
            ) from exc

    args = ", ".join(f"v{i}" for i in range(len(arg_plan)))
    lines = [
        f"def __aot_entry({args}, _get=_live.get, _regs=_regs, "
        f"_st=_st):",
        f"    if _get({entry}) is None:",
        "        return None",
    ]
    for index, (_address, limbs, _reg_index) in enumerate(arg_plan):
        lines.append(
            f"    if v{index} < 0 or (v{index} >> {bits * limbs}):")
        lines.append("        return None")  # generic path raises
    for line in emitter.lines:
        lines.append("    " + line)
    lines.append(f"    _regs[:] = ({', '.join(reg_refs)})")
    lines.append(f"    _st.pc = {trace.exit_pc}")
    lines.append(f"    _st.halted = {trace.halts}")
    # from_limbs uses addition, not OR: limbs may be non-canonical
    # (delayed carries) and overlap bit ranges
    value_expr = " + ".join(
        f"_w{i}" if i == 0 else f"(_w{i} << {bits * i})"
        for i in range(out_limbs)
    )
    limbs_expr = ("(" + ", ".join(f"_w{i}" for i in range(out_limbs))
                  + ("," if out_limbs == 1 else "") + ")")
    lines.append(
        f"    return ({value_expr}), {limbs_expr}, "
        f"{trace.cycles!r}, {trace.instructions_retired}"
    )
    source = "\n".join(lines) + "\n"
    namespace = {
        "M": MASK64,
        "_live": machine._aot_entry_cache,
        "_regs": machine.state.regs._regs,
        "_st": machine.state,
    }
    namespace.update(run.calls)
    with _deep_recursion():
        fn = _build(source, namespace, tag=f"{entry:#x}|entry",
                    function="__aot_entry")
    return AotEntry(
        entry=entry,
        fn=fn,
        source=source,
        persistable=run.persistable,
        cycles=trace.cycles,
        instructions_retired=trace.instructions_retired,
        halts=trace.halts,
        exit_pc=trace.exit_pc,
    )


def bind_entry_source(
    machine: Machine,
    entry: int,
    source: str,
    *,
    cycles: int | None,
    instructions: int,
    halts: bool,
    exit_pc: int,
) -> AotEntry:
    """Re-bind a persisted thunk source to *machine* (the warm-start
    path: no trace compilation, no symbolic execution — just one
    ``exec`` against a fresh machine-bound namespace).

    Artifact sources are machine-independent by construction: they
    reference only ``M`` and the ``_live``/``_regs``/``_st`` bindings
    supplied here (non-persistable sources never reach the disk cache).
    """
    if f"_get({entry})" not in source:
        raise AotError(
            f"artifact source does not guard entry {entry:#x}; "
            f"refusing a mismatched binding",
            reason="codegen_error",
        )
    namespace = {
        "M": MASK64,
        "_live": machine._aot_entry_cache,
        "_regs": machine.state.regs._regs,
        "_st": machine.state,
    }
    fn = _build(source, namespace, tag=f"{entry:#x}|artifact",
                function="__aot_entry")
    return AotEntry(
        entry=entry,
        fn=fn,
        source=source,
        persistable=True,
        cycles=cycles,
        instructions_retired=instructions,
        halts=halts,
        exit_pc=exit_pc,
    )


# ---------------------------------------------------------------------------
# Machine-level compilation (Machine.run(engine="aot"))
# ---------------------------------------------------------------------------

_REGLIST = ", ".join(f"r{i}" for i in range(32))


def compile_aot(machine: Machine, entry: int) -> AotFunction:
    """Fuse the straight-line program at *entry*, memory-exactly.

    Same symbolic core as :func:`compile_aot_entry`, but register
    inputs stay live atoms and memory accesses stay runtime effects in
    program order, so the function is a drop-in replacement for a jit
    function: ``fn(regs, stack_top)`` leaves registers *and memory*
    exactly as the interpreter would.

    Raises :class:`AotError`; the caller demotes to the jit tier.
    """
    trace = _trace_or_refuse(machine, entry)
    regs: list[_Node] = [_atom(f"r{i}") for i in range(32)]
    regs[1] = _const(HALT_ADDRESS)
    regs[2] = _atom("stack_top")
    memory = _RuntimeMemory()
    run = _SymbolicRun(regs, memory)
    with _deep_recursion():
        try:
            for pc, ins, spec in trace.step_instructions:
                run.step(pc, ins, spec)
            roots: list[_Node] = []
            for effect in memory.effects:
                if effect[0] == "load":
                    roots.append(effect[1])
                else:
                    roots.append(effect[1])
                    roots.append(effect[2])
            roots.extend(run.regs)
            emitter = _Emitter(_count_uses(roots))
            _emit_effects(emitter, memory.effects)
            reg_refs = [emitter.ref(node) for node in run.regs]
        except RecursionError as exc:
            raise AotError(
                f"expression graph for {entry:#x} is too deep to "
                f"render",
                reason="codegen_error",
            ) from exc

    lines = [
        "def __aot_kernel(regs, stack_top):",
        f"    ({_REGLIST}) = regs",
    ]
    for line in emitter.lines:
        lines.append("    " + line)
    lines.append(f"    regs[:] = ({', '.join(reg_refs)})")
    source = "\n".join(lines) + "\n"
    mem = machine.state.mem
    namespace = {
        "M": MASK64,
        "load": mem.load,
        "store": mem.store,
    }
    namespace.update(run.calls)
    with _deep_recursion():
        fn = _build(source, namespace, tag=f"{entry:#x}",
                    function="__aot_kernel")
    return AotFunction(
        entry=entry,
        fn=fn,
        source=source,
        namespace=namespace,
        instructions_retired=trace.instructions_retired,
        cycles=trace.cycles,
        histogram=trace.histogram,
        halts=trace.halts,
        exit_pc=trace.exit_pc,
    )
