"""Sparse, paged, byte-addressable little-endian memory.

Memory is organised as fixed-size pages allocated on first touch, so a
64-bit address space costs nothing until it is used.  All multi-byte
accesses are little-endian, as mandated by RISC-V.  Natural alignment is
enforced by default (the Rocket core traps on misaligned accesses); the
check can be relaxed for experiments.
"""

from __future__ import annotations

from repro.errors import MemoryAccessError
from repro.rv64.bits import MASK64

PAGE_BITS = 12
PAGE_SIZE = 1 << PAGE_BITS
PAGE_MASK = PAGE_SIZE - 1


class Memory:
    """Sparse paged memory with little-endian typed accessors."""

    def __init__(self, *, enforce_alignment: bool = True) -> None:
        self._pages: dict[int, bytearray] = {}
        self.enforce_alignment = enforce_alignment

    # -- paging ----------------------------------------------------------

    def _page_for(self, address: int) -> bytearray:
        page_number = address >> PAGE_BITS
        page = self._pages.get(page_number)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[page_number] = page
        return page

    def _check(self, address: int, size: int) -> None:
        if not 0 <= address <= MASK64 - (size - 1):
            raise MemoryAccessError(
                f"address {address:#x} (+{size}) outside 64-bit space"
            )
        if self.enforce_alignment and address % size:
            raise MemoryAccessError(
                f"misaligned {size}-byte access at {address:#x}"
            )

    # -- raw byte access -------------------------------------------------

    def read_bytes(self, address: int, size: int) -> bytes:
        """Read *size* raw bytes starting at *address*."""
        if size < 0:
            raise MemoryAccessError(f"negative read size {size}")
        out = bytearray(size)
        done = 0
        while done < size:
            offset = (address + done) & PAGE_MASK
            chunk = min(size - done, PAGE_SIZE - offset)
            page = self._page_for(address + done)
            out[done:done + chunk] = page[offset:offset + chunk]
            done += chunk
        return bytes(out)

    def write_bytes(self, address: int, data: bytes | bytearray) -> None:
        """Write raw *data* starting at *address*."""
        size = len(data)
        done = 0
        while done < size:
            offset = (address + done) & PAGE_MASK
            chunk = min(size - done, PAGE_SIZE - offset)
            page = self._page_for(address + done)
            page[offset:offset + chunk] = data[done:done + chunk]
            done += chunk

    # -- typed accessors ---------------------------------------------------

    def load(self, address: int, size: int, *, signed: bool = False) -> int:
        """Load a *size*-byte little-endian integer."""
        self._check(address, size)
        raw = self.read_bytes(address, size)
        return int.from_bytes(raw, "little", signed=signed)

    def store(self, address: int, value: int, size: int) -> None:
        """Store the low *size* bytes of *value*, little-endian."""
        self._check(address, size)
        value &= (1 << (8 * size)) - 1
        self.write_bytes(address, value.to_bytes(size, "little"))

    def load_u8(self, address: int) -> int:
        return self.load(address, 1)

    def load_u16(self, address: int) -> int:
        return self.load(address, 2)

    def load_u32(self, address: int) -> int:
        return self.load(address, 4)

    def load_u64(self, address: int) -> int:
        return self.load(address, 8)

    def store_u8(self, address: int, value: int) -> None:
        self.store(address, value, 1)

    def store_u16(self, address: int, value: int) -> None:
        self.store(address, value, 2)

    def store_u32(self, address: int, value: int) -> None:
        self.store(address, value, 4)

    def store_u64(self, address: int, value: int) -> None:
        self.store(address, value, 8)

    # -- multi-precision helpers ------------------------------------------

    def load_words(self, address: int, count: int) -> list[int]:
        """Load *count* consecutive 64-bit words (an MPI digit array)."""
        return [self.load_u64(address + 8 * i) for i in range(count)]

    def store_words(self, address: int, words: list[int]) -> None:
        """Store a list of 64-bit words consecutively at *address*."""
        for i, word in enumerate(words):
            self.store_u64(address + 8 * i, word)

    def load_mpi(self, address: int, count: int) -> int:
        """Load a *count*-word little-endian multi-precision integer."""
        return int.from_bytes(self.read_bytes(address, 8 * count), "little")

    def store_mpi(self, address: int, value: int, count: int) -> None:
        """Store *value* as a *count*-word little-endian MPI."""
        if value < 0:
            raise MemoryAccessError("cannot store a negative MPI")
        if value >> (64 * count):
            raise MemoryAccessError(
                f"MPI does not fit in {count} words: {value.bit_length()} bits"
            )
        self.write_bytes(address, value.to_bytes(8 * count, "little"))

    # -- bookkeeping --------------------------------------------------------

    @property
    def touched_pages(self) -> int:
        """Number of pages allocated so far."""
        return len(self._pages)

    def clear(self) -> None:
        """Release all pages."""
        self._pages.clear()
