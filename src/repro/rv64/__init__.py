"""RISC-V RV64 substrate: functional simulator, assembler, timing model.

This package is the stand-in for the paper's FPGA-hosted Rocket core.
It provides:

* :mod:`repro.rv64.isa` — RV64I+M instruction semantics and the
  extensible :class:`~repro.rv64.isa.InstructionSet` registry;
* :mod:`repro.rv64.encoding` — 32-bit binary encode/decode (incl. the
  R4-type custom format);
* :mod:`repro.rv64.assembler` / :mod:`repro.rv64.disassembler`;
* :mod:`repro.rv64.machine` — the functional hart;
* :mod:`repro.rv64.pipeline` — the Rocket-like in-order timing model;
* :mod:`repro.rv64.cache` — 16 kB I$/D$ models.
"""

from repro.rv64.assembler import AssembledProgram, Assembler, assemble
from repro.rv64.cache import Cache, CacheConfig
from repro.rv64.encoding import Decoder, encode_instruction, encode_program
from repro.rv64.isa import BASE_ISA, Instruction, InstrSpec, InstructionSet
from repro.rv64.machine import (
    DEFAULT_STACK_TOP,
    ExecutionResult,
    HALT_ADDRESS,
    Machine,
    MachineState,
)
from repro.rv64.memory import Memory
from repro.rv64.pipeline import (
    PipelineConfig,
    PipelineModel,
    PipelineStats,
    ROCKET_CONFIG,
    ROCKET_CONFIG_WITH_CACHES,
)
from repro.rv64.registers import RegisterFile, register_index, register_name
from repro.rv64.replay import (
    CompiledTrace,
    ReplayError,
    compile_trace,
    register_compiler,
)
from repro.rv64.timeline import (
    TimelineEntry,
    render_timeline,
    trace_timeline,
)
from repro.rv64.tracing import (
    ExecutionProfile,
    Profiler,
    instruction_mix,
    profile_machine_run,
)

__all__ = [
    "AssembledProgram",
    "Assembler",
    "assemble",
    "Cache",
    "CacheConfig",
    "Decoder",
    "encode_instruction",
    "encode_program",
    "BASE_ISA",
    "Instruction",
    "InstrSpec",
    "InstructionSet",
    "DEFAULT_STACK_TOP",
    "ExecutionResult",
    "HALT_ADDRESS",
    "Machine",
    "MachineState",
    "Memory",
    "PipelineConfig",
    "PipelineModel",
    "PipelineStats",
    "ROCKET_CONFIG",
    "ROCKET_CONFIG_WITH_CACHES",
    "RegisterFile",
    "register_index",
    "register_name",
    "CompiledTrace",
    "ReplayError",
    "compile_trace",
    "register_compiler",
    "TimelineEntry",
    "render_timeline",
    "trace_timeline",
    "ExecutionProfile",
    "Profiler",
    "instruction_mix",
    "profile_machine_run",
]
