"""RV64 integer register file with ABI-name support.

The register file stores 32 general-purpose 64-bit registers.  ``x0`` is
hard-wired to zero: writes are silently discarded, as on real hardware.
Both architectural names (``x0``–``x31``) and standard ABI names
(``zero``, ``ra``, ``sp``, ``a0``–``a7``, ``s0``–``s11``, ``t0``–``t6``)
are accepted everywhere a register is named.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.rv64.bits import u64

NUM_REGISTERS = 32

ABI_NAMES: tuple[str, ...] = (
    "zero", "ra", "sp", "gp", "tp",
    "t0", "t1", "t2",
    "s0", "s1",
    "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7",
    "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
    "t3", "t4", "t5", "t6",
)

_NAME_TO_INDEX: dict[str, int] = {}
for _i, _abi in enumerate(ABI_NAMES):
    _NAME_TO_INDEX[_abi] = _i
    _NAME_TO_INDEX[f"x{_i}"] = _i
_NAME_TO_INDEX["fp"] = 8  # alias for s0


def register_index(name: int | str) -> int:
    """Resolve *name* (index, ``xN``, or ABI name) to a register index."""
    if isinstance(name, int):
        if 0 <= name < NUM_REGISTERS:
            return name
        raise SimulationError(f"register index out of range: {name}")
    key = name.strip().lower()
    try:
        return _NAME_TO_INDEX[key]
    except KeyError:
        raise SimulationError(f"unknown register name: {name!r}") from None


def register_name(index: int) -> str:
    """Return the canonical ABI name for register *index*."""
    if not 0 <= index < NUM_REGISTERS:
        raise SimulationError(f"register index out of range: {index}")
    return ABI_NAMES[index]


class RegisterFile:
    """32 × 64-bit general-purpose registers with an x0 zero register."""

    __slots__ = ("_regs",)

    def __init__(self) -> None:
        self._regs: list[int] = [0] * NUM_REGISTERS

    def read(self, reg: int | str) -> int:
        """Read a register as an unsigned 64-bit integer."""
        return self._regs[register_index(reg)]

    def write(self, reg: int | str, value: int) -> None:
        """Write the low 64 bits of *value*; writes to x0 are discarded."""
        index = register_index(reg)
        if index != 0:
            self._regs[index] = u64(value)

    def __getitem__(self, reg: int | str) -> int:
        return self.read(reg)

    def __setitem__(self, reg: int | str, value: int) -> None:
        self.write(reg, value)

    def reset(self) -> None:
        """Zero every register."""
        for i in range(NUM_REGISTERS):
            self._regs[i] = 0

    def snapshot(self) -> dict[str, int]:
        """Return a name → value mapping of all non-zero registers."""
        return {
            ABI_NAMES[i]: v for i, v in enumerate(self._regs) if v or i == 0
        }

    def dump(self) -> str:
        """Human-readable multi-line register dump."""
        lines = []
        for i in range(0, NUM_REGISTERS, 4):
            cells = [
                f"{ABI_NAMES[j]:>5} = {self._regs[j]:016x}"
                for j in range(i, i + 4)
            ]
            lines.append("  ".join(cells))
        return "\n".join(lines)
