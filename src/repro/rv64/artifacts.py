"""Persistent on-disk cache for compiled aot entry thunks.

Tracing a kernel and fusing it into an aot thunk is pure compile-time
work: the generated source depends only on the kernel program, the
modulus constants baked into its pool, the pipeline model (which fixes
the static cycle account) and the radix/limb layout.  None of that
varies between processes, so every ``repro serve`` worker and every
pre-forked shard process re-deriving it from scratch is waste — the
dominant component of cold-start latency once the aot tier exists.

This module persists compiled thunks as small JSON artifacts:

* **keyed** by :class:`ArtifactKey` ``(kernel, modulus, pipeline,
  code_hash)`` — ``code_hash`` digests the kernel source, the ISA
  name, the operand shapes and the radix, so any change to the
  program or its layout produces a different key (stale artifacts are
  unreachable, not merely detected);
* **atomic**: writes go to a same-directory temp file and
  ``os.replace`` into place, so a concurrent reader sees either the
  old artifact or the new one, never a torn file;
* **self-validating**: each artifact embeds a format version and a
  SHA-256 digest over its canonical JSON; a version bump, digest
  mismatch, truncation or hand-edit makes :func:`load_artifact`
  *delete* the file and return ``None`` — the caller re-traces and
  re-writes, so corruption costs one cold start, never a wrong answer;
* **observable**: hits, misses, writes and invalidations feed the
  ``aot_artifact_*`` telemetry families (``docs/OBSERVABILITY.md``).

The cache directory defaults to ``~/.cache/repro/aot`` and is
overridden with ``REPRO_AOT_CACHE`` (CI points it at a workspace-local
directory; ``repro cache dir|stats|clear`` inspects it).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.telemetry import (
    record_artifact_cache_hit,
    record_artifact_cache_miss,
    record_artifact_cache_write,
    record_artifact_invalidated,
)

#: Bump whenever the artifact payload shape *or* the generated-source
#: calling convention changes; old artifacts then read as corrupt and
#: are deleted on first touch.
ARTIFACT_VERSION = 1

_ENV_VAR = "REPRO_AOT_CACHE"


def cache_dir() -> Path:
    """The artifact directory (``$REPRO_AOT_CACHE`` or the XDG default)."""
    override = os.environ.get(_ENV_VAR)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "aot"


@dataclass(frozen=True)
class ArtifactKey:
    """Identity of one compiled kernel thunk.

    Two processes with equal keys are guaranteed to generate identical
    thunk source, so the artifact is shareable; anything that could
    change the source or its static costs must be folded into one of
    the four fields.
    """

    kernel: str
    modulus: str
    pipeline: str
    code_hash: str

    @property
    def digest(self) -> str:
        material = "\x1f".join(
            (str(ARTIFACT_VERSION), self.kernel, self.modulus,
             self.pipeline, self.code_hash))
        return hashlib.sha256(material.encode()).hexdigest()

    @property
    def filename(self) -> str:
        return f"{self.kernel}-{self.digest[:16]}.json"


def make_key(kernel, pipeline_config) -> ArtifactKey:
    """Build the artifact key for *kernel* under *pipeline_config*.

    The code hash covers everything :func:`repro.rv64.aot.compile_aot_entry`
    reads from the kernel: the assembly source (hence the trace), the
    ISA it is assembled against, the operand/result shapes, and the
    radix that fixes the limb-extraction algebra.
    """
    context = kernel.context
    radix = context.radix
    hasher = hashlib.sha256()
    for part in (
        str(ARTIFACT_VERSION),
        kernel.source,
        kernel.isa.name,
        repr(tuple(kernel.input_limbs)),
        repr(kernel.output_limbs),
        repr((radix.bits, radix.limbs)),
    ):
        hasher.update(part.encode())
        hasher.update(b"\x1f")
    return ArtifactKey(
        kernel=kernel.name,
        modulus=hex(context.modulus),
        pipeline=repr(pipeline_config),
        code_hash=hasher.hexdigest(),
    )


def _payload_digest(payload: dict) -> str:
    material = {k: v for k, v in payload.items() if k != "digest"}
    canonical = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def store_artifact(
    key: ArtifactKey,
    *,
    entry: int,
    source: str,
    cycles: int | None,
    instructions: int,
    halts: bool,
    exit_pc: int,
) -> Path | None:
    """Persist a compiled thunk atomically; returns the path.

    Failures (read-only filesystem, full disk) are swallowed: the
    cache is an accelerator, never a correctness dependency.
    """
    payload = {
        "version": ARTIFACT_VERSION,
        "kernel": key.kernel,
        "modulus": key.modulus,
        "pipeline": key.pipeline,
        "code_hash": key.code_hash,
        "entry": entry,
        "source": source,
        "cycles": cycles,
        "instructions": instructions,
        "halts": halts,
        "exit_pc": exit_pc,
    }
    payload["digest"] = _payload_digest(payload)
    directory = cache_dir()
    path = directory / key.filename
    try:
        directory.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=directory, prefix=key.kernel, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
    except OSError:
        return None
    record_artifact_cache_write()
    return path


def load_artifact(key: ArtifactKey) -> dict | None:
    """Load and validate the artifact for *key*.

    Returns the payload dict, or ``None`` on miss.  Any validation
    failure — unreadable JSON, version skew, key-field mismatch (a
    truncated-digest collision), or a digest that does not match the
    content — deletes the file so the slot self-heals on the next
    write, and counts as a miss.
    """
    path = cache_dir() / key.filename
    try:
        raw = path.read_text()
    except OSError:
        record_artifact_cache_miss()
        return None
    try:
        payload = json.loads(raw)
        valid = (
            isinstance(payload, dict)
            and payload.get("version") == ARTIFACT_VERSION
            and payload.get("kernel") == key.kernel
            and payload.get("modulus") == key.modulus
            and payload.get("pipeline") == key.pipeline
            and payload.get("code_hash") == key.code_hash
            and isinstance(payload.get("source"), str)
            and isinstance(payload.get("entry"), int)
            and isinstance(payload.get("instructions"), int)
            and isinstance(payload.get("halts"), bool)
            and isinstance(payload.get("exit_pc"), int)
            and payload.get("digest") == _payload_digest(payload)
        )
    except (ValueError, TypeError):
        valid = False
    if not valid:
        try:
            path.unlink()
        except OSError:
            pass
        record_artifact_invalidated()
        record_artifact_cache_miss()
        return None
    record_artifact_cache_hit()
    return payload


def invalidate_artifact(key: ArtifactKey) -> bool:
    """Delete the on-disk artifact for *key* (fault recovery: once a
    compiled tier is suspect, the persisted copy is suspect too)."""
    path = cache_dir() / key.filename
    try:
        path.unlink()
    except OSError:
        return False
    record_artifact_invalidated()
    return True


def cache_stats() -> dict:
    """Shape of the on-disk cache, for ``repro cache stats``."""
    directory = cache_dir()
    artifacts = sorted(directory.glob("*.json")) if directory.is_dir() else []
    kernels = []
    total_bytes = 0
    for path in artifacts:
        try:
            total_bytes += path.stat().st_size
        except OSError:
            continue
        kernels.append(path.name)
    return {
        "dir": str(directory),
        "artifacts": len(kernels),
        "bytes": total_bytes,
        "files": kernels,
    }


def clear_cache() -> int:
    """Delete every artifact; returns the number removed."""
    directory = cache_dir()
    if not directory.is_dir():
        return 0
    removed = 0
    for path in directory.glob("*.json"):
        try:
            path.unlink()
        except OSError:
            continue
        removed += 1
    return removed
