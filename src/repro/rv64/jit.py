"""Trace-JIT execution engine: compile replay traces to Python code.

The third (fastest) execution tier.  The replay engine
(:mod:`repro.rv64.replay`) already removed fetch/decode/timing from the
per-run cost, but every replayed instruction still pays one Python
closure call and one register-list subscript per operand.
:func:`compile_jit` removes that too: it takes a cached
:class:`~repro.rv64.replay.CompiledTrace` and code-generates one
module-level Python function whose body inlines the whole instruction
sequence —

* the register file becomes 32 local variables (``r0`` … ``r31``),
  unpacked from the machine's register list on entry and written back
  on exit, so the differential suite's full register-file comparison
  holds bit-for-bit;
* ALU and ISE semantics become inline integer expressions (the same
  algebra as :mod:`repro.core.ise`'s pure value functions and the
  interpreter's ``op`` lambdas — extension packages register their
  expression emitters via :func:`register_template`, mirroring the
  replay compiler registry);
* ``ld``/``sd`` inline the same page fast path the replay closures use;
* anything without a template falls back to the *extracted* interpreter
  ``op`` lambda, or — last resort — to calling the replay step closure
  bracketed by a locals↔register-list sync, so the jit tier never has
  semantics of its own to drift.

The generated source is ``compile()``d and ``exec``'d once; the
precomputed static cycle count, histogram and retired-instruction total
from the trace are attached verbatim, so telemetry and cycle accounting
stay bit-identical to the interpreter and the replay engine
(``tests/differential/`` proves the three-way equivalence for every
kernel).

**Fault-injection symmetry.**  Each replay step ``k`` maps to exactly
one source block ``blocks[k]`` (the trace's ``step_instructions``
alignment).  The poisoning helpers (:func:`poisoned_skip`,
:func:`poisoned_xor`, :func:`poisoned_cycles`) rebuild the function
from a corrupted block list, so the fault campaign's replay-cache
sites corrupt a *live compiled function* the same way they corrupt the
trace — and recovery must evict the compiled function, not just the
trace (``Machine.invalidate_trace`` does both).

Compilation *refuses* with :class:`JitError` (``reason`` is one of
:data:`JitError.REASONS`) when the program has no replay trace or the
generated source fails to compile; callers demote jit → replay →
interpreter (the engine-demotion ladder, see ``docs/ROBUSTNESS.md``).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, replace
from typing import Callable, TYPE_CHECKING

from repro.errors import SimulationError
from repro.rv64.bits import MASK64, s32, u64
from repro.rv64.isa import FMT_I, FMT_I_SHIFT, FMT_R, Instruction, InstrSpec
from repro.rv64.machine import HALT_ADDRESS
from repro.rv64.memory import PAGE_BITS, PAGE_MASK
from repro.rv64.replay import CompiledTrace, _extract_alu_op

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rv64.machine import Machine


class JitError(SimulationError):
    """The trace cannot be compiled to a jit function.

    ``reason`` is a short machine-readable code used by telemetry's
    ``jit_rejects_total{reason=...}`` counter; the caller demotes to
    the replay engine (which may itself fall back to the interpreter).
    """

    code = "jit"

    #: Every reason `compile_jit` can refuse with (mirrored by the
    #: demotion tests in ``tests/test_replay_fallback.py``).
    REASONS = ("not_replayable", "codegen_error")

    def __init__(self, message: str, *, reason: str = "other") -> None:
        super().__init__(message)
        self.reason = reason


#: Run-level demotion reasons recorded by ``jit_demotions_total``:
#: the two compile refusals surface as ``not_compilable`` plus the
#: same situational demotions the replay tier knows.
DEMOTION_REASONS = ("not_compilable", "trace_hooks", "no_setup_return")


#: An emitter: ``(ins, pc) -> source block`` (no base indentation;
#: multi-line blocks separate lines with ``\n`` and may use nested
#: indentation and the scratch locals ``_a``/``_pg``/``_o``).
EmitFn = Callable[[Instruction, int], str]


@dataclass(frozen=True)
class JitFunction:
    """One trace compiled to a Python function, plus its static cost.

    ``blocks[k]`` is the source block generated for replay step ``k``;
    ``namespace`` seeds the globals of any rebuild (the fault layer's
    poisoning helpers re-``exec`` a modified block list into a copy).
    """

    entry: int
    fn: Callable
    source: str
    blocks: tuple[str, ...]
    namespace: dict
    instructions_retired: int
    cycles: int | None
    histogram: Counter
    halts: bool
    exit_pc: int


# ---------------------------------------------------------------------------
# Template registry
# ---------------------------------------------------------------------------

_TEMPLATES: dict[str, EmitFn] = {}


def register_template(mnemonic: str, emit: EmitFn) -> None:
    """Register a source emitter for *mnemonic* (idempotent).

    Extension packages (e.g. :mod:`repro.core.ise`) use this to inline
    their custom instructions; unregistered mnemonics transparently
    fall back to the extracted interpreter lambda (one call per
    instruction — replay speed) or to the replay step closure itself,
    so registration is purely a performance optimisation.
    """
    _TEMPLATES.setdefault(mnemonic, emit)


def _addr(ins: Instruction) -> str:
    """Effective-address expression (registers are already < 2^64)."""
    if ins.imm == 0:
        return f"r{ins.rs1}"
    return f"(r{ins.rs1} + {ins.imm}) & M"


def _signed(reg: str) -> str:
    """Branch-free s64 reinterpretation of a [0, 2^64) local."""
    return f"({reg} - (({reg} >> 63) << 64))"


# -- constant-producing instructions ----------------------------------------

def _emit_lui(ins: Instruction, pc: int) -> str:
    return f"r{ins.rd} = {u64(s32(ins.imm << 12))}"


def _emit_auipc(ins: Instruction, pc: int) -> str:
    # pc is a static property of the trace: folds to a constant
    return f"r{ins.rd} = {u64(pc + s32(ins.imm << 12))}"


# -- loads and stores --------------------------------------------------------

def _emit_ld(ins: Instruction, pc: int) -> str:
    address = _addr(ins)
    if ins.rd == 0:
        return f"load({address}, 8)"  # may still trap
    return (
        f"_a = {address}\n"
        f"_pg = pages.get(_a >> {PAGE_BITS})\n"
        f"if _pg is None or _a & 7:\n"
        f"    r{ins.rd} = load(_a, 8)\n"
        f"else:\n"
        f"    _o = _a & {PAGE_MASK}\n"
        f"    r{ins.rd} = int.from_bytes(_pg[_o:_o + 8], 'little')"
    )


def _emit_sd(ins: Instruction, pc: int) -> str:
    return (
        f"_a = {_addr(ins)}\n"
        f"_pg = pages.get(_a >> {PAGE_BITS})\n"
        f"if _pg is None or _a & 7:\n"
        f"    store(_a, r{ins.rs2}, 8)\n"
        f"else:\n"
        f"    _o = _a & {PAGE_MASK}\n"
        f"    _pg[_o:_o + 8] = r{ins.rs2}.to_bytes(8, 'little')"
    )


def _make_load_emitter(size: int, signed: bool) -> EmitFn:
    def emit(ins: Instruction, pc: int) -> str:
        address = _addr(ins)
        if ins.rd == 0:
            return f"load({address}, {size}, signed={signed})"
        if signed:
            return f"r{ins.rd} = load({address}, {size}, signed=True) & M"
        return f"r{ins.rd} = load({address}, {size})"

    return emit


def _make_store_emitter(size: int) -> EmitFn:
    def emit(ins: Instruction, pc: int) -> str:
        return f"store({_addr(ins)}, r{ins.rs2}, {size})"

    return emit


_TEMPLATES.update({
    "lui": _emit_lui,
    "auipc": _emit_auipc,
    "ld": _emit_ld,
    "sd": _emit_sd,
    "lb": _make_load_emitter(1, True),
    "lbu": _make_load_emitter(1, False),
    "lh": _make_load_emitter(2, True),
    "lhu": _make_load_emitter(2, False),
    "lw": _make_load_emitter(4, True),
    "lwu": _make_load_emitter(4, False),
    "sb": _make_store_emitter(1),
    "sh": _make_store_emitter(2),
    "sw": _make_store_emitter(4),
})


# -- ALU expressions ---------------------------------------------------------
# Inline the same 64-bit wrap-around algebra the interpreter lambdas in
# repro.rv64.isa implement; placeholders: {a}=rs1, {b}=rs2 (both locals
# holding values in [0, 2^64)), {sa}/{sb}=their s64 reinterpretation,
# {imm}=sign-extended immediate, {uimm}=u64(imm), {sh}=imm & 63.

_ALU_R_EXPR = {
    "add": "({a} + {b}) & M",
    "sub": "({a} - {b}) & M",
    "xor": "{a} ^ {b}",
    "or": "{a} | {b}",
    "and": "{a} & {b}",
    "slt": "1 if {sa} < {sb} else 0",
    "sltu": "1 if {a} < {b} else 0",
    "sll": "({a} << ({b} & 63)) & M",
    "srl": "{a} >> ({b} & 63)",
    "sra": "({sa} >> ({b} & 63)) & M",
    "mul": "({a} * {b}) & M",
    "mulh": "(({sa} * {sb}) >> 64) & M",
    "mulhsu": "(({sa} * {b}) >> 64) & M",
    "mulhu": "({a} * {b}) >> 64",
}

_ALU_I_EXPR = {
    "addi": "({a} + {imm}) & M",
    "xori": "({a} ^ {imm}) & M",
    "ori": "{a} | {uimm}",
    "andi": "{a} & {uimm}",
    "slti": "1 if {sa} < {imm} else 0",
    "sltiu": "1 if {a} < {uimm} else 0",
    "slli": "({a} << {sh}) & M",
    "srli": "{a} >> {sh}",
    "srai": "({sa} >> {sh}) & M",
}


def _make_alu_r_emitter(expr: str) -> EmitFn:
    def emit(ins: Instruction, pc: int) -> str:
        a, b = f"r{ins.rs1}", f"r{ins.rs2}"
        return f"r{ins.rd} = " + expr.format(
            a=a, b=b, sa=_signed(a), sb=_signed(b))

    return emit


def _make_alu_i_emitter(expr: str) -> EmitFn:
    def emit(ins: Instruction, pc: int) -> str:
        if ins.mnemonic == "addi" and ins.imm == 0:
            return f"r{ins.rd} = r{ins.rs1}"  # mv: li/pseudo expansion
        a = f"r{ins.rs1}"
        return f"r{ins.rd} = " + expr.format(
            a=a, sa=_signed(a), imm=ins.imm, uimm=u64(ins.imm),
            sh=ins.imm & 63)

    return emit


for _mnemonic, _expr in _ALU_R_EXPR.items():
    _TEMPLATES[_mnemonic] = _make_alu_r_emitter(_expr)
for _mnemonic, _expr in _ALU_I_EXPR.items():
    _TEMPLATES[_mnemonic] = _make_alu_i_emitter(_expr)


# ---------------------------------------------------------------------------
# Source assembly
# ---------------------------------------------------------------------------

_REGLIST = ", ".join(f"r{i}" for i in range(32))

#: Locals ↔ register-list sync statements, used around the last-resort
#: replay-step fallback (and as the function prologue/epilogue).
_UNPACK = f"({_REGLIST}) = regs"
_WRITEBACK = f"regs[:] = ({_REGLIST})"


def _render(blocks: list[str] | tuple[str, ...]) -> str:
    lines = [
        "def __jit_kernel(regs, stack_top):",
        f"    {_UNPACK}",
        f"    r1 = {HALT_ADDRESS}",   # ra -> the halt sentinel
        "    r2 = stack_top",         # sp
    ]
    for block in blocks:
        for line in block.split("\n"):
            lines.append("    " + line)
    lines.append(f"    {_WRITEBACK}")
    return "\n".join(lines) + "\n"


def _build_function(
    blocks: list[str] | tuple[str, ...], namespace: dict, *, tag: str
) -> tuple[Callable, str]:
    source = _render(blocks)
    try:
        code = compile(source, f"<jit:{tag}>", "exec")
        scope = dict(namespace)
        exec(code, scope)
        fn = scope["__jit_kernel"]
    except JitError:
        raise
    except Exception as exc:
        raise JitError(
            f"generated source for {tag} failed to build: {exc}",
            reason="codegen_error",
        ) from exc
    return fn, source


def _emit_step(
    trace: CompiledTrace,
    index: int,
    pc: int,
    ins: Instruction,
    spec: InstrSpec,
    namespace: dict,
) -> str:
    emit = _TEMPLATES.get(ins.mnemonic)
    if emit is not None:
        return emit(ins, pc)
    # no template: bind the extracted interpreter lambda (replay speed,
    # interpreter semantics by construction) ...
    op = _extract_alu_op(spec)
    if op is not None and ins.rd != 0:
        if spec.fmt == FMT_R:
            namespace[f"_op{index}"] = op
            return f"r{ins.rd} = _op{index}(r{ins.rs1}, r{ins.rs2})"
        if spec.fmt in (FMT_I, FMT_I_SHIFT):
            namespace[f"_op{index}"] = op
            return f"r{ins.rd} = _op{index}(r{ins.rs1}, {ins.imm})"
    # ... or, last resort, call the replay step closure itself inside a
    # locals↔register-list sync — slower, never wrong (covers generic
    # spec.execute steps, including pc-relative ones: the closure
    # restores pc itself)
    namespace[f"_step{index}"] = trace.steps[index]
    return f"{_WRITEBACK}\n_step{index}()\n{_UNPACK}"


def compile_jit_from_trace(
    machine: Machine, trace: CompiledTrace
) -> JitFunction:
    """Compile a (healthy) replay trace into a :class:`JitFunction`."""
    if len(trace.step_instructions) != len(trace.steps):
        raise JitError(
            f"trace for {trace.entry:#x} has no step/instruction "
            f"alignment (compiled before the jit tier existed?)",
            reason="codegen_error",
        )
    mem = machine.state.mem
    namespace = {
        "M": MASK64,
        "pages": mem._pages,
        "load": mem.load,
        "store": mem.store,
    }
    blocks = [
        _emit_step(trace, index, pc, ins, spec, namespace)
        for index, (pc, ins, spec) in enumerate(trace.step_instructions)
    ]
    tag = f"{trace.entry:#x}"
    fn, source = _build_function(blocks, namespace, tag=tag)
    return JitFunction(
        entry=trace.entry,
        fn=fn,
        source=source,
        blocks=tuple(blocks),
        namespace=namespace,
        instructions_retired=trace.instructions_retired,
        cycles=trace.cycles,
        histogram=trace.histogram,
        halts=trace.halts,
        exit_pc=trace.exit_pc,
    )


def compile_jit(machine: Machine, entry: int) -> JitFunction:
    """Compile the straight-line program at *entry* to a jit function.

    Raises :class:`JitError` if the program has no replay trace (the
    jit tier compiles *traces*, so everything replay refuses, jit
    refuses too) or if code generation fails; the caller should demote
    to the replay engine.
    """
    trace = machine._trace_for(entry)
    if trace is None:
        raise JitError(
            f"no replay trace for entry {entry:#x}: the jit tier "
            f"compiles replay traces",
            reason="not_replayable",
        )
    return compile_jit_from_trace(machine, trace)


# ---------------------------------------------------------------------------
# Entry thunks: fused marshal / call / read-out for KernelRunner
# ---------------------------------------------------------------------------

def _pack_expr(var: str, bits: int, limbs: int) -> str:
    """Expression packing *var* into ``limbs`` little-endian 64-bit
    words as one integer (``to_limbs`` then byte-concatenation, fused;
    the caller guards ``0 <= var < 2^(bits*limbs)``)."""
    if bits == 64:
        return var
    mask = (1 << bits) - 1
    parts = [f"({var} & {mask})"]
    for i in range(1, limbs):
        parts.append(f"((({var} >> {bits * i}) & {mask}) << {64 * i})")
    return " | ".join(parts)


def compile_entry(
    machine: Machine,
    entry: int,
    *,
    arg_plan,
    result_reg: int,
    result_addr: int,
    out_limbs: int,
    radix,
    stack_top: int,
    tier: str = "jit",
):
    """Generate a fused kernel-entry thunk for one runner, or ``None``.

    The scalar jit run path still pays per-call Python overhead around
    the compiled function: limb decomposition (``Radix.to_limbs``),
    ``Memory.write_bytes`` per operand, register zeroing, the read-out
    and ``Radix.from_limbs``.  Those are all *static* per kernel — the
    operand addresses, limb widths and counts never change — so this
    second (tiny) code generator bakes them into one function::

        thunk(a, b) -> (value, limbs, cycles, instructions) | None

    with the argument/result buffers resolved to ``(page, offset)``
    pairs at build time (sparse-memory pages are allocated on first
    touch and then stable, see :mod:`repro.rv64.memory`).

    ``tier`` selects the execution core: ``"jit"`` calls the compiled
    :class:`JitFunction`; ``"replay"`` loops the compiled trace's step
    closures (used by :meth:`KernelRunner.run_batch` to amortise
    per-call marshalling for the replay tier too — the *scalar* replay
    path deliberately keeps its PR-1 shape).  Either way the compiled
    artifact is re-fetched from the machine's cache **on every call**,
    so trace invalidation and fault-campaign poisoning keep their
    exact semantics; the thunk returns ``None`` (caller falls back to
    the generic path) when the cache is empty or an operand is out of
    representable range (where ``to_limbs`` would raise).  Returns
    ``None`` at build time when the layout cannot be specialised
    (page-crossing or misaligned buffers).
    """
    if tier not in ("jit", "replay"):
        raise JitError(f"unknown entry-thunk tier {tier!r}",
                       reason="codegen_error")
    mem = machine.state.mem
    bits = radix.bits
    spans = []
    for address, limbs, reg_index in arg_plan:
        nbytes = 8 * limbs
        if address % 8 or (address & PAGE_MASK) + nbytes > PAGE_MASK + 1:
            return None
        spans.append((mem._page_for(address), address & PAGE_MASK,
                      limbs, reg_index, address))
    result_bytes = 8 * out_limbs
    if (result_addr % 8
            or (result_addr & PAGE_MASK) + result_bytes > PAGE_MASK + 1):
        return None

    args = ", ".join(f"v{i}" for i in range(len(spans)))
    lines = [
        f"def __jit_entry({args}):",
        f"    _jf = _cache.get({entry})",
        "    if _jf is None:",
        "        return None",
    ]
    namespace: dict = {
        "_cache": (machine._jit_cache if tier == "jit"
                   else machine._trace_cache),
        "_regs": machine.state.regs._regs,
        "_zero": [0] * len(machine.state.regs._regs),
        "_st": machine.state,
        "_pgR": mem._page_for(result_addr),
    }
    for i, (page, offset, limbs, reg_index, address) in enumerate(spans):
        namespace[f"_pg{i}"] = page
        lines += [
            f"    if v{i} < 0 or (v{i} >> {bits * limbs}):",
            "        return None",  # out of range: generic path raises
            f"    _pg{i}[{offset}:{offset + 8 * limbs}] = "
            f"({_pack_expr(f'v{i}', bits, limbs)})"
            f".to_bytes({8 * limbs}, 'little')",
        ]
    lines.append("    _regs[:] = _zero")
    for _page, _offset, _limbs, reg_index, address in spans:
        lines.append(f"    _regs[{reg_index}] = {address}")
    lines.append(f"    _regs[{result_reg}] = {result_addr}")
    if tier == "jit":
        lines.append(f"    _jf.fn(_regs, {stack_top})")
    else:
        # the replay core: exactly Machine._replay's loop, with the
        # ra/sp setup the trace expects
        lines += [
            f"    _regs[1] = {HALT_ADDRESS}",
            f"    _regs[2] = {stack_top}",
            "    for _s in _jf.steps:",
            "        _s()",
        ]
    lines += [
        "    _st.pc = _jf.exit_pc",
        "    _st.halted = _jf.halts",
        f"    _raw = _pgR[{result_addr & PAGE_MASK}:"
        f"{(result_addr & PAGE_MASK) + result_bytes}]",
    ]
    for i in range(out_limbs):
        lines.append(
            f"    _w{i} = int.from_bytes(_raw[{8 * i}:{8 * i + 8}], "
            f"'little')"
        )
    # from_limbs uses addition, not OR: read-out limbs may be
    # non-canonical (delayed carries) and overlap bit ranges
    value_expr = " + ".join(
        f"_w{i}" if i == 0 else f"(_w{i} << {bits * i})"
        for i in range(out_limbs)
    )
    limbs_expr = ("(" + ", ".join(f"_w{i}" for i in range(out_limbs))
                  + ("," if out_limbs == 1 else "") + ")")
    lines.append(
        f"    return ({value_expr}), {limbs_expr}, "
        f"_jf.cycles, _jf.instructions_retired"
    )
    source = "\n".join(lines) + "\n"
    try:
        code = compile(source, f"<jit:{entry:#x}|entry-{tier}>", "exec")
        scope = dict(namespace)
        exec(code, scope)
        return scope["__jit_entry"]
    except Exception:  # pragma: no cover - thunks are optional
        return None    # the generic path is always available


# ---------------------------------------------------------------------------
# Fault-injection poisoning helpers (see repro.fault.inject)
# ---------------------------------------------------------------------------

def poisoned_skip(jitfn: JitFunction, k: int) -> JitFunction:
    """A copy of *jitfn* with source block *k* dropped (step skip)."""
    blocks = jitfn.blocks[:k] + jitfn.blocks[k + 1:]
    fn, source = _build_function(
        blocks, jitfn.namespace, tag=f"{jitfn.entry:#x}|skip{k}")
    return replace(jitfn, fn=fn, source=source, blocks=blocks)


def poisoned_xor(
    jitfn: JitFunction, k: int, reg: int, mask: int
) -> JitFunction:
    """A copy of *jitfn* whose block *k* additionally flips register
    bits (the jit image of a corrupted replay closure payload)."""
    blocks = (jitfn.blocks[:k]
              + (jitfn.blocks[k] + f"\nr{reg} ^= {mask}",)
              + jitfn.blocks[k + 1:])
    fn, source = _build_function(
        blocks, jitfn.namespace, tag=f"{jitfn.entry:#x}|xor{k}")
    return replace(jitfn, fn=fn, source=source, blocks=blocks)


def poisoned_cycles(jitfn: JitFunction, cycles: int) -> JitFunction:
    """A copy of *jitfn* reporting a corrupted static cycle count."""
    return replace(jitfn, cycles=cycles)
