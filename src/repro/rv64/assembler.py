"""Two-pass textual assembler for the RV64 simulator.

Accepts standard RISC-V assembly syntax for the implemented subset:

* one instruction or label per line; comments start with ``#`` or ``//``;
* labels are ``name:`` and may be referenced by branch/jump operands;
* ABI and architectural register names are both accepted;
* immediates may be decimal, hex (``0x``), binary (``0b``) or octal, with
  an optional sign;
* common pseudo-instructions are expanded (``li``, ``mv``, ``not``,
  ``neg``, ``nop``, ``seqz``, ``snez``, ``beqz``, ``bnez``, ``j``,
  ``jr``, ``ret``).

The assembler is driven by the :class:`InstructionSet` it is given, so
ISE mnemonics registered by :mod:`repro.core` assemble with no changes
here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AssemblerError, ReproError
from repro.rv64.bits import fits_signed, sign_extend
from repro.rv64.isa import (
    FMT_B,
    FMT_I,
    FMT_I_SHIFT,
    FMT_J,
    FMT_LOAD,
    FMT_NONE,
    FMT_R,
    FMT_R4,
    FMT_RIA,
    FMT_S,
    FMT_U,
    Instruction,
    InstructionSet,
)
from repro.rv64.registers import register_index


@dataclass
class AssembledProgram:
    """Result of assembling a source module."""

    instructions: list[Instruction]
    labels: dict[str, int]  # label -> byte offset from program base
    source_lines: list[str]  # one entry per instruction, for diagnostics

    def __len__(self) -> int:
        return len(self.instructions)


def _parse_int(token: str) -> int:
    token = token.strip()
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError(f"bad integer literal {token!r}") from None


def _strip_comment(line: str) -> str:
    for marker in ("#", "//", ";"):
        pos = line.find(marker)
        if pos >= 0:
            line = line[:pos]
    return line.strip()


def _split_operands(text: str) -> list[str]:
    return [t.strip() for t in text.split(",") if t.strip()]


def _parse_mem_operand(token: str) -> tuple[int, int]:
    """Parse ``imm(reg)`` into (imm, reg_index)."""
    open_paren = token.find("(")
    if open_paren < 0 or not token.endswith(")"):
        raise AssemblerError(f"expected imm(reg), got {token!r}")
    imm_text = token[:open_paren].strip() or "0"
    reg_text = token[open_paren + 1:-1].strip()
    return _parse_int(imm_text), register_index(reg_text)


def expand_li(rd: int, value: int) -> list[Instruction]:
    """Expand ``li rd, value`` into base instructions.

    Handles any 64-bit constant (interpreted modulo 2**64) with the
    standard lui/addi(w)/slli recursion used by GNU as and LLVM.
    """
    value &= (1 << 64) - 1
    signed = value - (1 << 64) if value >> 63 else value

    if fits_signed(signed, 12):
        return [Instruction("addi", rd=rd, rs1=0, imm=signed)]

    if fits_signed(signed, 32):
        hi20 = ((signed + 0x800) >> 12) & 0xFFFFF
        lo12 = sign_extend(signed & 0xFFF, 12)
        out = [Instruction("lui", rd=rd, imm=hi20)]
        if lo12:
            out.append(Instruction("addiw", rd=rd, rs1=rd, imm=lo12))
        return out

    lo12 = sign_extend(signed & 0xFFF, 12)
    upper = (signed - lo12) >> 12
    out = expand_li(rd, upper)
    out.append(Instruction("slli", rd=rd, rs1=rd, imm=12))
    if lo12:
        out.append(Instruction("addi", rd=rd, rs1=rd, imm=lo12))
    return out


# label-operand placeholder carried between passes
@dataclass
class _PendingBranch:
    mnemonic: str
    rd: int
    rs1: int
    rs2: int
    label: str
    fmt: str


class Assembler:
    """Two-pass assembler over a given instruction set."""

    def __init__(self, isa: InstructionSet) -> None:
        self.isa = isa

    # -- pseudo expansion -------------------------------------------------

    def _expand_pseudo(
        self, mnemonic: str, operands: list[str]
    ) -> list[Instruction] | list[_PendingBranch] | None:
        def reg(i: int) -> int:
            return register_index(operands[i])

        if mnemonic == "nop":
            return [Instruction("addi", rd=0, rs1=0, imm=0)]
        if mnemonic == "mv":
            return [Instruction("addi", rd=reg(0), rs1=reg(1), imm=0)]
        if mnemonic == "not":
            return [Instruction("xori", rd=reg(0), rs1=reg(1), imm=-1)]
        if mnemonic == "neg":
            return [Instruction("sub", rd=reg(0), rs1=0, rs2=reg(1))]
        if mnemonic == "seqz":
            return [Instruction("sltiu", rd=reg(0), rs1=reg(1), imm=1)]
        if mnemonic == "snez":
            return [Instruction("sltu", rd=reg(0), rs1=0, rs2=reg(1))]
        if mnemonic == "li":
            if len(operands) != 2:
                raise AssemblerError("li needs two operands")
            return expand_li(reg(0), _parse_int(operands[1]))
        if mnemonic == "ret":
            return [Instruction("jalr", rd=0, rs1=1, imm=0)]
        if mnemonic == "jr":
            return [Instruction("jalr", rd=0, rs1=reg(0), imm=0)]
        if mnemonic == "beqz":
            return [_PendingBranch("beq", 0, reg(0), 0, operands[1], FMT_B)]
        if mnemonic == "bnez":
            return [_PendingBranch("bne", 0, reg(0), 0, operands[1], FMT_B)]
        if mnemonic == "j":
            return [_PendingBranch("jal", 0, 0, 0, operands[0], FMT_J)]
        return None

    # -- operand parsing ---------------------------------------------------

    def _parse_instruction(
        self, mnemonic: str, operands: list[str]
    ) -> Instruction | _PendingBranch:
        spec = self.isa[mnemonic]
        fmt = spec.fmt

        def need(count: int) -> None:
            if len(operands) != count:
                raise AssemblerError(
                    f"{mnemonic}: expected {count} operands, "
                    f"got {len(operands)}"
                )

        if fmt == FMT_R:
            need(3)
            return Instruction(mnemonic, rd=register_index(operands[0]),
                               rs1=register_index(operands[1]),
                               rs2=register_index(operands[2]))
        if fmt == FMT_R4:
            need(4)
            return Instruction(mnemonic, rd=register_index(operands[0]),
                               rs1=register_index(operands[1]),
                               rs2=register_index(operands[2]),
                               rs3=register_index(operands[3]))
        if fmt in (FMT_I, FMT_I_SHIFT):
            need(3)
            return Instruction(mnemonic, rd=register_index(operands[0]),
                               rs1=register_index(operands[1]),
                               imm=_parse_int(operands[2]))
        if fmt == FMT_LOAD:
            need(2)
            imm, rs1 = _parse_mem_operand(operands[1])
            return Instruction(mnemonic, rd=register_index(operands[0]),
                               rs1=rs1, imm=imm)
        if fmt == FMT_S:
            need(2)
            imm, rs1 = _parse_mem_operand(operands[1])
            return Instruction(mnemonic, rs2=register_index(operands[0]),
                               rs1=rs1, imm=imm)
        if fmt == FMT_B:
            need(3)
            rs1 = register_index(operands[0])
            rs2 = register_index(operands[1])
            target = operands[2]
            try:
                return Instruction(mnemonic, rs1=rs1, rs2=rs2,
                                   imm=_parse_int(target))
            except AssemblerError:
                return _PendingBranch(mnemonic, 0, rs1, rs2, target, FMT_B)
        if fmt == FMT_U:
            need(2)
            return Instruction(mnemonic, rd=register_index(operands[0]),
                               imm=_parse_int(operands[1]))
        if fmt == FMT_J:
            need(2)
            rd = register_index(operands[0])
            target = operands[1]
            try:
                return Instruction(mnemonic, rd=rd, imm=_parse_int(target))
            except AssemblerError:
                return _PendingBranch(mnemonic, rd, 0, 0, target, FMT_J)
        if fmt == FMT_RIA:
            need(4)
            return Instruction(mnemonic, rd=register_index(operands[0]),
                               rs1=register_index(operands[1]),
                               rs2=register_index(operands[2]),
                               imm=_parse_int(operands[3]))
        if fmt == FMT_NONE:
            need(0)
            return Instruction(mnemonic)
        raise AssemblerError(f"unhandled format {fmt!r}")

    # -- driver -----------------------------------------------------------

    def assemble(self, source: str) -> AssembledProgram:
        """Assemble *source* text into an :class:`AssembledProgram`."""
        items: list[Instruction | _PendingBranch] = []
        item_lines: list[str] = []
        labels: dict[str, int] = {}

        for line_number, raw in enumerate(source.splitlines(), start=1):
            line = _strip_comment(raw)
            if not line:
                continue
            while ":" in line:
                name, _, rest = line.partition(":")
                name = name.strip()
                if not name.isidentifier():
                    raise AssemblerError(
                        f"line {line_number}: bad label {name!r}"
                    )
                if name in labels:
                    raise AssemblerError(
                        f"line {line_number}: duplicate label {name!r}"
                    )
                labels[name] = 4 * len(items)
                line = rest.strip()
            if not line:
                continue

            parts = line.split(None, 1)
            mnemonic = parts[0].lower()
            operands = _split_operands(parts[1]) if len(parts) > 1 else []

            try:
                expanded = self._expand_pseudo(mnemonic, operands)
                if expanded is None:
                    expanded = [self._parse_instruction(mnemonic, operands)]
            except ReproError as exc:
                raise AssemblerError(f"line {line_number}: {exc}") from None
            items.extend(expanded)
            item_lines.extend([raw.strip()] * len(expanded))

        instructions: list[Instruction] = []
        for index, item in enumerate(items):
            if isinstance(item, _PendingBranch):
                if item.label not in labels:
                    raise AssemblerError(f"undefined label {item.label!r}")
                offset = labels[item.label] - 4 * index
                if item.fmt == FMT_B:
                    instructions.append(Instruction(
                        item.mnemonic, rs1=item.rs1, rs2=item.rs2,
                        imm=offset))
                else:
                    instructions.append(Instruction(
                        item.mnemonic, rd=item.rd, imm=offset))
            else:
                instructions.append(item)
        return AssembledProgram(instructions, labels, item_lines)


def assemble(source: str, isa: InstructionSet) -> AssembledProgram:
    """Module-level convenience wrapper around :class:`Assembler`."""
    return Assembler(isa).assemble(source)
