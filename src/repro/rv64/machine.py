"""Functional RV64 machine: fetch-decode-execute with optional timing.

The machine executes :class:`~repro.rv64.isa.Instruction` objects loaded
from an assembled program image.  A :class:`PipelineModel` may be
attached to produce cycle counts alongside the architectural execution;
the functional result never depends on the timing model.

Execution terminates when the program counter reaches
:data:`HALT_ADDRESS` (the conventional return address planted in ``ra``
before calling a kernel), when an ``ebreak`` retires, or when the step
limit is exceeded (guarding against runaway programs).
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Iterator

from repro import telemetry
from repro.errors import SimulationError
from repro.rv64.assembler import AssembledProgram
from repro.rv64.isa import BASE_ISA, Instruction, InstructionSet
from repro.rv64.memory import Memory
from repro.rv64.pipeline import PipelineModel
from repro.rv64.registers import RegisterFile

#: Jumping here ends the simulation (used as the kernel return address).
HALT_ADDRESS = 0x0000_0000_DEAD_0000

#: Default stack top for kernels that need scratch memory.
DEFAULT_STACK_TOP = 0x0000_0000_7FFF_F000

#: The execution tiers of :meth:`Machine.run`, slowest to fastest.
ENGINES = ("interpreter", "replay", "jit", "aot")

TraceHook = Callable[["MachineState", Instruction], None]


@dataclass
class ExecutionResult:
    """Summary of one :meth:`Machine.run` invocation.

    ``engine`` names the execution engine that *actually* ran — one of
    :data:`ENGINES` — which matters because a requested engine silently
    demotes down the aot → jit → replay → interpreter ladder when
    exactness cannot be guaranteed (trace hooks attached,
    non-replayable or non-compilable program, ``setup_return=False``).
    Telemetry and profiling must consume this field rather than echo
    the request.
    """

    instructions_retired: int
    cycles: int | None
    histogram: Counter[str] = field(default_factory=Counter)
    engine: str = "interpreter"

    @property
    def cpi(self) -> float:
        if self.cycles is None or not self.instructions_retired:
            return 0.0
        return self.cycles / self.instructions_retired


class MachineState:
    """Architectural state shared with instruction semantics."""

    __slots__ = (
        "regs", "mem", "pc", "next_pc", "halted", "branch_taken",
        "last_address",
    )

    def __init__(self, mem: Memory | None = None) -> None:
        self.regs = RegisterFile()
        self.mem = mem if mem is not None else Memory()
        self.pc = 0
        self.next_pc = 0
        self.halted = False
        self.branch_taken = False
        self.last_address: int | None = None


class Machine:
    """An RV64 hart executing a loaded program image."""

    def __init__(
        self,
        isa: InstructionSet = BASE_ISA,
        *,
        pipeline: PipelineModel | None = None,
        max_steps: int = 50_000_000,
    ) -> None:
        self.isa = isa
        self.state = MachineState()
        self.pipeline = pipeline
        self.max_steps = max_steps
        self._program: dict[int, tuple[Instruction, object]] = {}
        self._trace_hooks: list[TraceHook] = []
        self.collect_histogram = False
        self._histogram: Counter[str] = Counter()
        # decode-once/replay-many caches (see repro.rv64.replay)
        self._trace_cache: dict[int, object] = {}
        self._replay_rejected: set[int] = set()
        # trace-JIT caches (see repro.rv64.jit)
        self._jit_cache: dict[int, object] = {}
        self._jit_rejected: set[int] = set()
        # whole-kernel aot caches (see repro.rv64.aot):
        # _aot_cache holds machine-level AotFunctions for run();
        # _aot_entry_cache holds KernelRunner entry thunks and doubles
        # as their liveness guard (popping an entry disables its thunk)
        self._aot_cache: dict[int, object] = {}
        self._aot_rejected: set[int] = set()
        self._aot_entry_cache: dict[int, object] = {}
        # on-disk artifact identity for the entry hosted by this
        # machine, set by KernelRunner so invalidate_trace can drop
        # the persisted copy too (see repro.rv64.artifacts)
        self.aot_disk_key = None

    # -- program management ------------------------------------------------

    def load_program(
        self,
        program: AssembledProgram | list[Instruction],
        base: int = 0x1000,
    ) -> int:
        """Load *program* at byte address *base*; returns the entry pc."""
        instructions = (
            program.instructions
            if isinstance(program, AssembledProgram)
            else program
        )
        for index, ins in enumerate(instructions):
            spec = self.isa[ins.mnemonic]
            self._program[base + 4 * index] = (ins, spec)
        self._trace_cache.clear()
        self._replay_rejected.clear()
        self._jit_cache.clear()
        self._jit_rejected.clear()
        self._aot_cache.clear()
        self._aot_rejected.clear()
        self._aot_entry_cache.clear()
        return base

    def program_extent(self) -> tuple[int, int]:
        """Return (lowest pc, byte size) of the loaded image."""
        if not self._program:
            return (0, 0)
        low = min(self._program)
        high = max(self._program)
        return low, high - low + 4

    def add_trace_hook(self, hook: TraceHook) -> None:
        """Register *hook* to observe every retired instruction.

        While any hook is attached, ``run(replay=True)`` falls back to
        the interpreter: replay skips per-instruction dispatch, so it
        cannot deliver per-instruction callbacks.
        """
        self._trace_hooks.append(hook)

    def remove_trace_hook(self, hook: TraceHook) -> None:
        """Detach a hook added with :meth:`add_trace_hook`."""
        self._trace_hooks.remove(hook)

    @contextmanager
    def trace_hook(self, hook: TraceHook) -> Iterator[TraceHook]:
        """Scoped hook attachment: detached on block exit even if the
        run raises (the recommended profiling idiom)."""
        self.add_trace_hook(hook)
        try:
            yield hook
        finally:
            self.remove_trace_hook(hook)

    # -- convenience register/memory access ---------------------------------

    @property
    def regs(self) -> RegisterFile:
        return self.state.regs

    @property
    def mem(self) -> Memory:
        return self.state.mem

    def reset(self) -> None:
        """Clear registers, halt flag and timing state (memory persists)."""
        self.state.regs.reset()
        self.state.halted = False
        self.state.pc = 0
        self._histogram.clear()
        if self.pipeline:
            self.pipeline.reset()

    # -- execution -----------------------------------------------------------

    def run(
        self,
        entry: int,
        *,
        setup_return: bool = True,
        stack_top: int = DEFAULT_STACK_TOP,
        replay: bool = False,
        engine: str | None = None,
    ) -> ExecutionResult:
        """Run from *entry* until halt; returns retired-instruction stats.

        If *setup_return* is true, ``ra`` is pointed at
        :data:`HALT_ADDRESS` and ``sp`` at *stack_top*, so a trailing
        ``ret`` ends the simulation — the calling convention used by all
        generated kernels.

        ``engine`` selects the execution tier (one of :data:`ENGINES`;
        ``None`` honours the legacy ``replay`` flag):

        * ``"replay"`` decodes the program once into a compiled trace
          (see :mod:`repro.rv64.replay`) and replays the bound
          closures, skipping fetch/decode and the per-instruction
          timing walk; the architectural result and the reported cycle
          count are identical to the interpreter's for a run from
          :meth:`reset` (the cycle cost of straight-line code is a
          static property of the trace, so the attached pipeline model
          is left untouched);
        * ``"jit"`` additionally code-generates the trace into a single
          Python function (see :mod:`repro.rv64.jit`) — no per-step
          closure dispatch at all, same bit-exact contract;
        * ``"aot"`` fuses the whole trace into wide-int expression
          dataflow (see :mod:`repro.rv64.aot`) — address arithmetic and
          mask setup constant-fold away, carry chains collapse into
          fused expressions, same bit-exact contract.

        A requested tier silently demotes down the aot → jit → replay
        → interpreter ladder whenever exactness cannot be guaranteed —
        internal control flow, trace hooks, cache-enabled timing,
        ``setup_return=False``, a codegen refusal; the result's
        ``engine`` field reports what actually ran.
        """
        if engine is None:
            engine = "replay" if replay else "interpreter"
        elif engine not in ENGINES:
            raise SimulationError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        if engine == "aot":
            if self._trace_hooks:
                telemetry.record_aot_demotion("trace_hooks")
            elif not setup_return:
                telemetry.record_aot_demotion("no_setup_return")
            else:
                aotfn = self._aot_for(entry)
                if aotfn is not None:
                    return self._run_aot(aotfn, stack_top)
                telemetry.record_aot_demotion("not_compilable")
            engine = "jit"  # demote one rung; jit re-checks below
        if engine == "jit":
            if self._trace_hooks:
                telemetry.record_jit_demotion("trace_hooks")
            elif not setup_return:
                telemetry.record_jit_demotion("no_setup_return")
            else:
                jitfn = self._jit_for(entry)
                if jitfn is not None:
                    return self._run_jit(jitfn, stack_top)
                telemetry.record_jit_demotion("not_compilable")
            engine = "replay"  # demote one rung; replay re-checks below
        if engine == "replay":
            if self._trace_hooks:
                telemetry.record_replay_fallback("trace_hooks")
            elif not setup_return:
                telemetry.record_replay_fallback("no_setup_return")
            else:
                trace = self._trace_for(entry)
                if trace is not None:
                    return self._replay(trace, stack_top)
                telemetry.record_replay_fallback("not_replayable")
        state = self.state
        if setup_return:
            state.regs.write("ra", HALT_ADDRESS)
            state.regs.write("sp", stack_top)
        state.pc = entry
        state.halted = False

        program = self._program
        pipeline = self.pipeline
        hooks = self._trace_hooks
        histogram = self._histogram if self.collect_histogram else None

        retired = 0
        limit = self.max_steps
        while not state.halted:
            pc = state.pc
            if pc == HALT_ADDRESS:
                break
            entry_pair = program.get(pc)
            if entry_pair is None:
                raise SimulationError(
                    f"fetch from unmapped address {pc:#x} "
                    f"after {retired} instructions"
                )
            ins, spec = entry_pair
            state.next_pc = pc + 4
            state.branch_taken = False
            state.last_address = None

            spec.execute(state, ins)  # type: ignore[attr-defined]

            if pipeline is not None:
                pipeline.issue(
                    spec,  # type: ignore[arg-type]
                    ins,
                    pc=pc,
                    mem_address=state.last_address,
                    branch_taken=state.branch_taken,
                )
            if histogram is not None:
                histogram[ins.mnemonic] += 1
            if hooks:
                for hook in hooks:
                    hook(state, ins)

            state.pc = state.next_pc
            retired += 1
            if retired > limit:
                raise SimulationError(
                    f"step limit {limit} exceeded at pc {state.pc:#x}"
                )

        telemetry.record_machine_run("interpreter")
        return ExecutionResult(
            instructions_retired=retired,
            cycles=pipeline.cycles if pipeline else None,
            histogram=Counter(self._histogram),
            engine="interpreter",
        )

    # -- trace replay --------------------------------------------------------

    def _trace_for(self, entry: int):
        """Compile (once) and cache the replay trace for *entry*."""
        trace = self._trace_cache.get(entry)
        if trace is None and entry not in self._replay_rejected:
            from repro.rv64.replay import ReplayError, compile_trace

            try:
                trace = compile_trace(self, entry)
            except ReplayError as exc:
                telemetry.record_trace_reject(exc.reason)
                self._replay_rejected.add(entry)
                return None
            telemetry.record_trace_compile()
            self._trace_cache[entry] = trace
        return trace

    def replay_supported(self, entry: int) -> bool:
        """Whether the program at *entry* compiles to a replay trace."""
        return self._trace_for(entry) is not None

    def _jit_for(self, entry: int):
        """Compile (once) and cache the jit function for *entry*."""
        jitfn = self._jit_cache.get(entry)
        if jitfn is not None:
            telemetry.record_jit_cache_hit()
            return jitfn
        if entry in self._jit_rejected:
            return None
        from repro.rv64.jit import JitError, compile_jit

        start = perf_counter()
        try:
            jitfn = compile_jit(self, entry)
        except JitError as exc:
            telemetry.record_jit_reject(exc.reason)
            self._jit_rejected.add(entry)
            return None
        telemetry.record_jit_compile(perf_counter() - start)
        self._jit_cache[entry] = jitfn
        return jitfn

    def jit_supported(self, entry: int) -> bool:
        """Whether the program at *entry* compiles to a jit function."""
        if entry in self._jit_cache:
            return True  # capability probe: not a served run, no
            # jit_cache_hits_total sample (that counter counts runs)
        return self._jit_for(entry) is not None

    def _aot_for(self, entry: int):
        """Compile (once) and cache the fused aot function for *entry*."""
        aotfn = self._aot_cache.get(entry)
        if aotfn is not None:
            telemetry.record_aot_cache_hit()
            return aotfn
        if entry in self._aot_rejected:
            return None
        from repro.rv64.aot import AotError, compile_aot

        start = perf_counter()
        try:
            aotfn = compile_aot(self, entry)
        except AotError as exc:
            telemetry.record_aot_reject(exc.reason)
            self._aot_rejected.add(entry)
            return None
        telemetry.record_aot_compile(perf_counter() - start)
        self._aot_cache[entry] = aotfn
        return aotfn

    def aot_supported(self, entry: int) -> bool:
        """Whether the program at *entry* fuses into an aot function.

        An entry thunk bound from a disk artifact counts as supported
        *without* compiling the machine-level function — compiling it
        would need the replay trace, defeating the warm start the
        artifact exists to provide.
        """
        if entry in self._aot_cache or entry in self._aot_entry_cache:
            return True  # capability probe, not a served run
        return self._aot_for(entry) is not None

    def invalidate_trace(self, entry: int) -> bool:
        """Drop the cached replay trace for *entry*; returns whether one
        was cached.

        This is the recovery primitive of the hardened execution layer
        (see ``docs/ROBUSTNESS.md``): a trace suspected of corruption is
        invalidated and the next fast-tier run recompiles it from the
        (immutable) program image.  The compiled jit and aot functions
        are dropped alongside the trace — they were generated *from*
        the suspect trace, so restoring trust means evicting every
        derived tier, including the entry's on-disk aot artifact (the
        persisted copy is just the compiled tier serialised).  Previous
        rejections are also forgotten, so a once-unreplayable entry
        gets re-examined.
        """
        self._replay_rejected.discard(entry)
        self._jit_rejected.discard(entry)
        self._aot_rejected.discard(entry)
        if self._jit_cache.pop(entry, None) is not None:
            telemetry.record_jit_evicted()
        dropped_aot = self._aot_cache.pop(entry, None) is not None
        if self._aot_entry_cache.pop(entry, None) is not None:
            dropped_aot = True
        if dropped_aot:
            telemetry.record_aot_evicted()
        if self.aot_disk_key is not None:
            from repro.rv64.artifacts import invalidate_artifact

            invalidate_artifact(self.aot_disk_key)
        removed = self._trace_cache.pop(entry, None) is not None
        if removed:
            telemetry.record_trace_invalidated()
        return removed

    def _replay(self, trace, stack_top: int) -> ExecutionResult:
        """Execute a compiled trace; mirrors one interpreted run."""
        state = self.state
        regs = state.regs._regs
        regs[1] = HALT_ADDRESS   # ra
        regs[2] = stack_top      # sp
        for step in trace.steps:
            step()
        state.pc = trace.exit_pc
        state.halted = trace.halts
        telemetry.record_machine_run("replay")
        return ExecutionResult(
            instructions_retired=trace.instructions_retired,
            cycles=trace.cycles,
            histogram=(
                Counter(trace.histogram)
                if self.collect_histogram
                else Counter()
            ),
            engine="replay",
        )

    def _run_jit(self, jitfn, stack_top: int) -> ExecutionResult:
        """Execute a compiled jit function; mirrors one replayed run."""
        state = self.state
        jitfn.fn(state.regs._regs, stack_top)
        state.pc = jitfn.exit_pc
        state.halted = jitfn.halts
        telemetry.record_machine_run("jit")
        return ExecutionResult(
            instructions_retired=jitfn.instructions_retired,
            cycles=jitfn.cycles,
            histogram=(
                Counter(jitfn.histogram)
                if self.collect_histogram
                else Counter()
            ),
            engine="jit",
        )

    def _run_aot(self, aotfn, stack_top: int) -> ExecutionResult:
        """Execute a fused aot function; mirrors one jit run."""
        state = self.state
        aotfn.fn(state.regs._regs, stack_top)
        state.pc = aotfn.exit_pc
        state.halted = aotfn.halts
        telemetry.record_machine_run("aot")
        return ExecutionResult(
            instructions_retired=aotfn.instructions_retired,
            cycles=aotfn.cycles,
            histogram=(
                Counter(aotfn.histogram)
                if self.collect_histogram
                else Counter()
            ),
            engine="aot",
        )
