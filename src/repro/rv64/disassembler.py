"""Disassembler: instruction words or objects back to assembly text."""

from __future__ import annotations

from repro.rv64.encoding import Decoder
from repro.rv64.isa import (
    FMT_B,
    FMT_I,
    FMT_I_SHIFT,
    FMT_J,
    FMT_LOAD,
    FMT_NONE,
    FMT_R,
    FMT_R4,
    FMT_RIA,
    FMT_S,
    FMT_U,
    Instruction,
    InstructionSet,
)
from repro.rv64.registers import register_name


def format_instruction(isa: InstructionSet, ins: Instruction) -> str:
    """Render *ins* as canonical assembly text for the given ISA."""
    spec = isa[ins.mnemonic]
    rn = register_name
    m = ins.mnemonic
    fmt = spec.fmt
    if fmt == FMT_R:
        return f"{m} {rn(ins.rd)}, {rn(ins.rs1)}, {rn(ins.rs2)}"
    if fmt == FMT_R4:
        return (f"{m} {rn(ins.rd)}, {rn(ins.rs1)}, {rn(ins.rs2)}, "
                f"{rn(ins.rs3)}")
    if fmt in (FMT_I, FMT_I_SHIFT):
        return f"{m} {rn(ins.rd)}, {rn(ins.rs1)}, {ins.imm}"
    if fmt == FMT_LOAD:
        return f"{m} {rn(ins.rd)}, {ins.imm}({rn(ins.rs1)})"
    if fmt == FMT_S:
        return f"{m} {rn(ins.rs2)}, {ins.imm}({rn(ins.rs1)})"
    if fmt == FMT_B:
        return f"{m} {rn(ins.rs1)}, {rn(ins.rs2)}, {ins.imm}"
    if fmt == FMT_U:
        return f"{m} {rn(ins.rd)}, {ins.imm:#x}"
    if fmt == FMT_J:
        return f"{m} {rn(ins.rd)}, {ins.imm}"
    if fmt == FMT_RIA:
        return (f"{m} {rn(ins.rd)}, {rn(ins.rs1)}, {rn(ins.rs2)}, "
                f"{ins.imm}")
    if fmt == FMT_NONE:
        return m
    return m


def disassemble_word(isa: InstructionSet, word: int) -> str:
    """Decode and render one 32-bit instruction word."""
    return format_instruction(isa, Decoder(isa).decode(word))


def disassemble_program(
    isa: InstructionSet, words: list[int], base: int = 0
) -> str:
    """Render a whole encoded program, one ``addr: text`` line each."""
    decoder = Decoder(isa)
    lines = []
    for index, word in enumerate(words):
        text = format_instruction(isa, decoder.decode(word))
        lines.append(f"{base + 4 * index:08x}:  {word:08x}  {text}")
    return "\n".join(lines)
