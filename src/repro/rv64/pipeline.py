"""In-order timing model of the Rocket-like 5-stage pipeline.

The paper's host core is a 64-bit Rocket: 5-stage, in-order, single
issue, with full forwarding and a 2-stage pipelined multiplier (extended
to XMUL for the custom instructions; "all custom instructions (and also
``mul[hu]``) execute in one cycle" refers to 1/cycle *throughput*; the
input/output register stages give an effective result latency of two
cycles to a dependent instruction).

Rather than simulating stage-by-stage, the model uses the classic
scoreboard formulation that is exact for an in-order single-issue
machine with full forwarding:

* an instruction issues at ``t = max(prev_issue + 1, ready(rs1),
  ready(rs2), ready(rs3))``;
* its result becomes forwardable at ``t + latency(kind)``;
* taken branches and jumps flush the front-end, adding a penalty before
  the next issue;
* cache misses add their penalty at the access.

This reproduces exactly the hazards the paper reasons about: the
``mul``/``mulhu`` result-use bubble, the ``sltu`` carry-chain
dependencies, and the load-use delay.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ParameterError
from repro.rv64.cache import Cache, CacheConfig
from repro.rv64.isa import (
    KIND_ALU,
    KIND_BRANCH,
    KIND_DIV,
    KIND_JUMP,
    KIND_LOAD,
    KIND_MUL,
    KIND_STORE,
    KIND_SYSTEM,
    InstrSpec,
    Instruction,
)


@dataclass(frozen=True)
class PipelineConfig:
    """Latency/penalty parameters of the timing model.

    Defaults model the paper's Rocket configuration; every experiment
    that varies them does so explicitly.
    """

    alu_latency: int = 1
    mul_latency: int = 3       # 2-stage pipelined (X)MUL: the input and
    #                            output register stages (Sect. 3.3) give a
    #                            dependent instruction a 2-bubble distance,
    #                            matching Rocket's 3-cycle mul latency
    div_latency: int = 33      # iterative divider (not used by kernels)
    load_latency: int = 2      # load-use delay of one bubble
    store_latency: int = 1
    branch_penalty: int = 3    # taken-branch flush (mispredict cost)
    jump_penalty: int = 2
    icache: CacheConfig | None = None
    dcache: CacheConfig | None = None

    def latency_for(self, kind: str) -> int:
        table = {
            KIND_ALU: self.alu_latency,
            KIND_MUL: self.mul_latency,
            KIND_DIV: self.div_latency,
            KIND_LOAD: self.load_latency,
            KIND_STORE: self.store_latency,
            KIND_BRANCH: self.alu_latency,
            KIND_JUMP: self.alu_latency,
            KIND_SYSTEM: self.alu_latency,
        }
        try:
            return table[kind]
        except KeyError:
            raise ParameterError(f"unknown timing class {kind!r}") from None


ROCKET_CONFIG = PipelineConfig()

ROCKET_CONFIG_WITH_CACHES = PipelineConfig(
    icache=CacheConfig(), dcache=CacheConfig()
)


@dataclass
class PipelineStats:
    """Aggregate results of one timed execution."""

    instructions: int = 0
    cycles: int = 0
    raw_hazard_stalls: int = 0
    control_flush_cycles: int = 0
    cache_miss_cycles: int = 0
    kind_counts: dict[str, int] = field(default_factory=dict)

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0


class PipelineModel:
    """Scoreboard timing model; drive via :meth:`issue`, read ``stats``."""

    def __init__(self, config: PipelineConfig = ROCKET_CONFIG) -> None:
        self.config = config
        self.icache = Cache(config.icache) if config.icache else None
        self.dcache = Cache(config.dcache) if config.dcache else None
        self.reset()

    def reset(self) -> None:
        self._reg_ready = [0] * 32
        self._next_issue = 0
        self._last_complete = 0
        self.stats = PipelineStats()
        if self.icache:
            self.icache.reset_stats()
        if self.dcache:
            self.dcache.reset_stats()

    # -- core model --------------------------------------------------------

    def issue(
        self,
        spec: InstrSpec,
        ins: Instruction,
        *,
        pc: int,
        mem_address: int | None = None,
        branch_taken: bool = False,
    ) -> int:
        """Account for one retired instruction; returns its issue cycle."""
        config = self.config
        earliest = self._next_issue

        if self.icache is not None and not self.icache.access(pc):
            penalty = config.icache.miss_penalty  # type: ignore[union-attr]
            earliest += penalty
            self.stats.cache_miss_cycles += penalty

        t = earliest
        for source in spec.reads:
            reg = getattr(ins, source)
            if reg:
                ready = self._reg_ready[reg]
                if ready > t:
                    t = ready
        self.stats.raw_hazard_stalls += t - earliest

        kind = spec.kind
        if (
            kind in (KIND_LOAD, KIND_STORE)
            and self.dcache is not None
            and mem_address is not None
            and not self.dcache.access(mem_address)
        ):
            penalty = config.dcache.miss_penalty  # type: ignore[union-attr]
            t += penalty
            self.stats.cache_miss_cycles += penalty

        latency = config.latency_for(kind)
        if spec.writes_rd and ins.rd:
            self._reg_ready[ins.rd] = t + latency
        complete = t + latency

        next_issue = t + 1
        if kind == KIND_JUMP:
            next_issue += config.jump_penalty
            self.stats.control_flush_cycles += config.jump_penalty
        elif kind == KIND_BRANCH and branch_taken:
            next_issue += config.branch_penalty
            self.stats.control_flush_cycles += config.branch_penalty
        self._next_issue = next_issue

        self.stats.instructions += 1
        self.stats.kind_counts[kind] = self.stats.kind_counts.get(kind, 0) + 1
        if complete > self._last_complete:
            self._last_complete = complete
        self.stats.cycles = max(self._next_issue, self._last_complete)
        return t

    @property
    def cycles(self) -> int:
        """Total cycles consumed so far (drained pipeline)."""
        return self.stats.cycles
