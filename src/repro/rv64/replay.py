"""Trace-replay execution engine for straight-line programs.

Every generated kernel is branch-free straight-line code with
data-independent timing: the dynamic instruction sequence — and hence
the pipeline schedule — is identical on every invocation, only the
operand values differ.  The interpreter in :mod:`repro.rv64.machine`
nevertheless re-fetches, re-dispatches and re-times the same program on
each run.  This module removes that overhead with a decode-once /
replay-many model:

* :func:`compile_trace` walks the loaded program *statically* from the
  entry point (possible exactly because the code is straight-line),
  binds each instruction to a compact Python closure operating directly
  on the register list and memory pages, and pre-computes the cycle
  cost once by running the instruction sequence through a fresh
  :class:`~repro.rv64.pipeline.PipelineModel`;
* replaying the compiled trace executes only the bound closures — no
  fetch, no decode, no per-instruction timing walk — while producing
  bit-identical architectural state and the identical cycle count.

Compilation *refuses* (raising :class:`ReplayError`) whenever exactness
cannot be guaranteed statically: any control flow other than the final
``ret``/``ebreak``, a write to ``ra`` (which would redirect the final
``ret``), or a cache-enabled timing configuration (miss patterns are
history-dependent, so the cycle count is not a static property of the
trace).  Callers fall back to the interpreter in that case; the
differential suite under ``tests/differential/`` proves the two paths
equivalent wherever replay is accepted.

Instruction semantics are *not* re-implemented here: closures for base
ALU instructions are built from the same ``op`` lambdas that power the
interpreter (extracted from the :func:`~repro.rv64.isa._alu_reg` /
``_alu_imm`` closures), and extension packages register their own
compilers via :func:`register_compiler` (mirroring
:func:`~repro.rv64.isa.register_global_spec`).  Anything without a
specialised compiler falls back to calling ``spec.execute`` — slower,
never wrong.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable, TYPE_CHECKING

from repro.errors import SimulationError
from repro.rv64.bits import MASK64, s32, u64
from repro.rv64.isa import (
    FMT_I,
    FMT_I_SHIFT,
    FMT_R,
    Instruction,
    InstrSpec,
    KIND_BRANCH,
    KIND_JUMP,
)
from repro.rv64.memory import PAGE_BITS, PAGE_MASK
from repro.rv64.pipeline import PipelineModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rv64.machine import Machine, MachineState

#: One replayed instruction: a zero-argument closure over machine state.
TraceStep = Callable[[], None]

#: A compiler factory: ``(state, ins, pc) -> step``.  Returning ``None``
#: means the instruction is a statically-known no-op (e.g. a pure write
#: to ``x0``) and is dropped from the step sequence — it still counts
#: toward the retired-instruction total, histogram and cycle cost.
CompilerFn = Callable[["MachineState", Instruction, int], TraceStep | None]


class ReplayError(SimulationError):
    """The program cannot be compiled to an exact replay trace.

    ``reason`` is a short machine-readable code (``control_flow``,
    ``ra_write``, ``cache_timing``, ``unmapped``, ``step_limit``) used
    by telemetry's ``trace_rejects_total{reason=...}`` counter.
    """

    code = "replay"

    #: Every reason `compile_trace` can refuse with (mirrored by the
    #: exhaustive fallback tests in ``tests/test_replay_fallback.py``).
    REASONS = ("control_flow", "ra_write", "cache_timing", "unmapped",
               "step_limit")

    def __init__(self, message: str, *, reason: str = "other") -> None:
        super().__init__(message)
        self.reason = reason


@dataclass(frozen=True)
class CompiledTrace:
    """A program decoded once into a replayable closure sequence.

    ``cycles`` is the *from-reset* cost of one complete execution under
    the machine's pipeline configuration (``None`` when the machine has
    no timing model); ``histogram`` is the static mnemonic count of the
    trace, which equals the dynamic histogram because the code is
    straight-line.

    ``step_instructions`` records, aligned 1:1 with ``steps``, the
    ``(pc, instruction, spec)`` that produced each step (dropped no-ops
    are absent from both).  The trace-JIT tier (:mod:`repro.rv64.jit`)
    consumes this alignment to emit exactly one source block per replay
    step, so fault injection can corrupt step *k* symmetrically in both
    tiers.
    """

    entry: int
    steps: tuple[TraceStep, ...]
    instructions_retired: int
    cycles: int | None
    histogram: Counter
    halts: bool       # ends in ebreak (vs. ret to the halt sentinel)
    exit_pc: int      # pc the interpreter would be left at
    step_instructions: tuple[
        tuple[int, Instruction, InstrSpec], ...
    ] = ()


# ---------------------------------------------------------------------------
# Compiler registry
# ---------------------------------------------------------------------------

_COMPILERS: dict[str, CompilerFn] = {}


def register_compiler(mnemonic: str, factory: CompilerFn) -> None:
    """Register a specialised step compiler for *mnemonic* (idempotent).

    Extension packages (e.g. :mod:`repro.core.ise`) use this to give
    their custom instructions fast replay closures; unregistered
    mnemonics transparently fall back to the generic ``spec.execute``
    path, so registration is purely a performance optimisation.
    """
    _COMPILERS.setdefault(mnemonic, factory)


# -- constant-producing instructions ----------------------------------------

def _compile_lui(state: MachineState, ins: Instruction, pc: int):
    if ins.rd == 0:
        return None
    regs = state.regs._regs
    rd = ins.rd
    value = u64(s32(ins.imm << 12))

    def step() -> None:
        regs[rd] = value

    return step


def _compile_auipc(state: MachineState, ins: Instruction, pc: int):
    # pc is a static property of the trace, so auipc folds to a constant
    if ins.rd == 0:
        return None
    regs = state.regs._regs
    rd = ins.rd
    value = u64(pc + s32(ins.imm << 12))

    def step() -> None:
        regs[rd] = value

    return step


# -- loads and stores --------------------------------------------------------

def _compile_ld(state: MachineState, ins: Instruction, pc: int):
    regs = state.regs._regs
    mem = state.mem
    pages = mem._pages
    load = mem.load
    rd, rs1, imm = ins.rd, ins.rs1, ins.imm
    if rd == 0:
        def discard() -> None:
            load((regs[rs1] + imm) & MASK64, 8)  # may still trap

        return discard

    def step() -> None:
        address = (regs[rs1] + imm) & MASK64
        page = pages.get(address >> PAGE_BITS)
        if page is None or address & 7:
            regs[rd] = load(address, 8)  # slow path: alloc/align/trap
        else:
            offset = address & PAGE_MASK
            regs[rd] = int.from_bytes(page[offset:offset + 8], "little")

    return step


def _compile_sd(state: MachineState, ins: Instruction, pc: int):
    regs = state.regs._regs
    mem = state.mem
    pages = mem._pages
    store = mem.store
    rs1, rs2, imm = ins.rs1, ins.rs2, ins.imm

    def step() -> None:
        address = (regs[rs1] + imm) & MASK64
        page = pages.get(address >> PAGE_BITS)
        if page is None or address & 7:
            store(address, regs[rs2], 8)
        else:
            offset = address & PAGE_MASK
            page[offset:offset + 8] = regs[rs2].to_bytes(8, "little")

    return step


def _make_load_compiler(size: int, signed: bool) -> CompilerFn:
    def compile_(state: MachineState, ins: Instruction, pc: int):
        regs = state.regs._regs
        load = state.mem.load
        rd, rs1, imm = ins.rd, ins.rs1, ins.imm
        if rd == 0:
            def discard() -> None:
                load((regs[rs1] + imm) & MASK64, size, signed=signed)

            return discard

        def step() -> None:
            regs[rd] = u64(load((regs[rs1] + imm) & MASK64, size,
                                signed=signed))

        return step

    return compile_


def _make_store_compiler(size: int) -> CompilerFn:
    def compile_(state: MachineState, ins: Instruction, pc: int):
        regs = state.regs._regs
        store = state.mem.store
        rs1, rs2, imm = ins.rs1, ins.rs2, ins.imm

        def step() -> None:
            store((regs[rs1] + imm) & MASK64, regs[rs2], size)

        return step

    return compile_


def _compile_fence(state: MachineState, ins: Instruction, pc: int):
    return None  # architecturally a no-op on this memory model


_COMPILERS.update({
    "lui": _compile_lui,
    "auipc": _compile_auipc,
    "ld": _compile_ld,
    "sd": _compile_sd,
    "lb": _make_load_compiler(1, True),
    "lbu": _make_load_compiler(1, False),
    "lh": _make_load_compiler(2, True),
    "lhu": _make_load_compiler(2, False),
    "lw": _make_load_compiler(4, True),
    "lwu": _make_load_compiler(4, False),
    "sb": _make_store_compiler(1),
    "sh": _make_store_compiler(2),
    "sw": _make_store_compiler(4),
    "fence": _compile_fence,
})


# -- ALU instructions: reuse the interpreter's own semantics ----------------

def _extract_alu_op(spec: InstrSpec):
    """Recover the pure ``op`` lambda inside an ``_alu_reg``/``_alu_imm``
    execute closure, guaranteeing replay semantics are *the same object*
    as interpreter semantics (no re-implementation to drift)."""
    fn = spec.execute
    code = getattr(fn, "__code__", None)
    if code is not None and code.co_freevars == ("op",):
        return fn.__closure__[0].cell_contents  # type: ignore[index]
    return None


def _compile_alu(state: MachineState, spec: InstrSpec,
                 ins: Instruction, pc: int):
    op = _extract_alu_op(spec)
    if op is None:
        return _MISSING
    if ins.rd == 0:
        return None  # pure computation into x0: statically a no-op
    regs = state.regs._regs
    rd = ins.rd
    if spec.fmt == FMT_R:
        rs1, rs2 = ins.rs1, ins.rs2

        def step() -> None:
            regs[rd] = op(regs[rs1], regs[rs2])

        return step
    if spec.fmt in (FMT_I, FMT_I_SHIFT):
        rs1, imm = ins.rs1, ins.imm

        def step() -> None:
            regs[rd] = op(regs[rs1], imm)

        return step
    return _MISSING


#: Sentinel: no specialised compiler applies, use the generic fallback.
_MISSING = object()


def _compile_generic(state: MachineState, spec: InstrSpec,
                     ins: Instruction, pc: int) -> TraceStep:
    """Fallback: drive the interpreter's execute function directly.

    Skips fetch/dispatch/timing but keeps exact semantics for any
    instruction without a specialised compiler.  ``pc``/``next_pc`` are
    restored per step so pc-relative semantics stay correct."""
    execute = spec.execute
    next_pc = pc + 4

    def step() -> None:
        state.pc = pc
        state.next_pc = next_pc
        execute(state, ins)

    return step


# ---------------------------------------------------------------------------
# Trace compilation
# ---------------------------------------------------------------------------

def _is_terminal_ret(ins: Instruction) -> bool:
    """The ``ret`` idiom (``jalr x0, ra, 0``) closing every kernel."""
    return (ins.mnemonic == "jalr" and ins.rd == 0 and ins.rs1 == 1
            and ins.imm == 0)


def _static_cycles(
    sequence: list[tuple[int, Instruction, InstrSpec]],
    pipeline: PipelineModel | None,
) -> int | None:
    """Pre-compute the from-reset cycle cost of one trace execution.

    Exact because the instruction sequence, the register dependence
    graph, and the (cache-free) per-instruction latencies are all static
    properties of straight-line code; only operand *values* vary between
    runs, and the scoreboard never consults them.
    """
    if pipeline is None:
        return None
    config = pipeline.config
    if config.icache is not None or config.dcache is not None:
        raise ReplayError(
            "cache timing is history-dependent; replay cannot "
            "precompute a static cycle count",
            reason="cache_timing",
        )
    model = PipelineModel(config)
    for pc, ins, spec in sequence:
        model.issue(spec, ins, pc=pc, mem_address=None, branch_taken=False)
    return model.cycles


def compile_trace(machine: Machine, entry: int) -> CompiledTrace:
    """Decode the straight-line program at *entry* into a replay trace.

    Raises :class:`ReplayError` if the program is not replayable; the
    caller should fall back to the interpreter.
    """
    program = machine._program
    state = machine.state
    sequence: list[tuple[int, Instruction, InstrSpec]] = []
    pc = entry
    limit = machine.max_steps
    while True:
        pair = program.get(pc)
        if pair is None:
            raise ReplayError(
                f"straight-line walk fell off the program image at "
                f"{pc:#x}",
                reason="unmapped",
            )
        ins, spec = pair
        sequence.append((pc, ins, spec))
        if len(sequence) > limit:
            raise ReplayError(f"trace exceeds step limit {limit}",
                              reason="step_limit")
        if _is_terminal_ret(ins) or ins.mnemonic == "ebreak":
            break  # retired by the interpreter too, then execution halts
        if spec.kind in (KIND_BRANCH, KIND_JUMP):
            raise ReplayError(
                f"control flow at {pc:#x} ({ins.mnemonic}): not "
                f"straight-line code",
                reason="control_flow",
            )
        if spec.writes_rd and ins.rd == 1:
            raise ReplayError(
                f"write to ra at {pc:#x} would redirect the final ret",
                reason="ra_write",
            )
        pc += 4

    cycles = _static_cycles(sequence, machine.pipeline)

    steps: list[TraceStep] = []
    step_instructions: list[tuple[int, Instruction, InstrSpec]] = []
    histogram: Counter[str] = Counter()
    for pc, ins, spec in sequence[:-1]:  # terminal ret/ebreak: no effect
        histogram[ins.mnemonic] += 1
        factory = _COMPILERS.get(ins.mnemonic)
        if factory is not None:
            step = factory(state, ins, pc)
        else:
            step = _compile_alu(state, spec, ins, pc)
            if step is _MISSING:
                step = _compile_generic(state, spec, ins, pc)
        if step is not None:
            steps.append(step)
            step_instructions.append((pc, ins, spec))
    final_pc, final_ins, _ = sequence[-1]
    histogram[final_ins.mnemonic] += 1
    halts = final_ins.mnemonic == "ebreak"

    from repro.rv64.machine import HALT_ADDRESS

    return CompiledTrace(
        entry=entry,
        steps=tuple(steps),
        instructions_retired=len(sequence),
        cycles=cycles,
        histogram=histogram,
        halts=halts,
        exit_pc=final_pc + 4 if halts else HALT_ADDRESS,
        step_instructions=tuple(step_instructions),
    )
