"""Async multi-tenant key-exchange service layer (``docs/SERVICE.md``).

Public surface:

* :class:`KeyExchangeService` — concurrent keygen/exchange/verify
  sessions over the simulated kernel stack, with per-tenant runner
  isolation, request coalescing into ``run_batch``, admission control
  and the ``aot -> jit -> replay -> interpreter`` degradation ladder;
* :class:`TenantConfig` / :func:`default_tenant_configs` — tenant
  policy (engine preference, hardening, lanes, queue bounds);
* :class:`AdmissionController` — bounded-queue backpressure with the
  stable ``"admission"`` rejection code;
* :class:`RequestCoalescer` — the batching window;
* :func:`start_server` / :class:`ServiceClient` — the JSON-lines TCP
  wire layer;
* :func:`run_load` / :func:`run_load_remote` / :class:`LoadReport` —
  the load harness behind ``repro load`` and the CI ``service-load``
  job (in-process, or over the wire against a live server).
"""

from repro.service.admission import (
    AdmissionController,
    CircuitBreaker,
    Ticket,
)
from repro.service.coalesce import RequestCoalescer
from repro.service.load import (
    LoadReport,
    expected_handshakes,
    run_load,
    run_load_remote,
)
from repro.service.server import FIELD_OPS, KeyExchangeService
from repro.service.tenancy import (
    ENGINE_LADDER,
    OVERLOAD_FLOOR,
    Lane,
    Tenant,
    TenantConfig,
    default_tenant_configs,
)
from repro.service.wire import ServiceClient, handle_connection, start_server

__all__ = [
    "ENGINE_LADDER",
    "FIELD_OPS",
    "OVERLOAD_FLOOR",
    "AdmissionController",
    "CircuitBreaker",
    "KeyExchangeService",
    "Lane",
    "LoadReport",
    "RequestCoalescer",
    "ServiceClient",
    "Tenant",
    "TenantConfig",
    "Ticket",
    "default_tenant_configs",
    "expected_handshakes",
    "handle_connection",
    "run_load",
    "run_load_remote",
    "start_server",
]
