"""The asyncio key-exchange service: concurrent multi-tenant sessions.

:class:`KeyExchangeService` exposes the CSIDH operations — ``keygen``,
``exchange``, ``verify`` — plus coalesced raw field ops as awaitable
methods over the existing :class:`~repro.csidh.protocol.Csidh` /
:class:`~repro.kernels.runner.KernelRunner` stack.  The concurrency
model:

* the **event loop** owns scheduling: admission control, lane
  checkout, request coalescing;
* a **thread pool** owns execution: simulated group actions are
  blocking pure-Python work, hopped off the loop with
  ``run_in_executor`` (per-thread telemetry span stacks keep the
  cycle-attribution tree coherent);
* **lanes** own machines: every blocking call runs on a lane checked
  out of its tenant's queue, and a lane's simulator machines are
  confined to its pool scope — two concurrent sessions can never
  share mutable simulator state (``tests/service/``).

Faults and overload walk tenants down the ``aot -> jit -> replay ->
interpreter`` ladder (:mod:`repro.service.tenancy`); a faulting
operation is retried on the next rung down, so a poisoned compiled
artifact degrades the one tenant's latency instead of failing its
requests.  Field ops from many sessions are coalesced into
``run_batch`` windows (:mod:`repro.service.coalesce`).
"""

from __future__ import annotations

import asyncio
import math
import random
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Sequence

from repro import telemetry
from repro.telemetry import tracing
from repro.csidh.parameters import CsidhParameters
from repro.csidh.protocol import PrivateKey, PublicKey
from repro.csidh.validate import is_supersingular
from repro.errors import (
    DeadlineError,
    FaultError,
    ReproError,
    ServiceError,
    SimulationError,
)
from repro.service.admission import AdmissionController, CircuitBreaker
from repro.service.coalesce import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_WAIT_S,
    RequestCoalescer,
)
from repro.service.tenancy import (
    Lane,
    Tenant,
    TenantConfig,
    default_tenant_configs,
    next_service_id,
)

#: Field operations servable through the coalescer, with their arity.
FIELD_OPS = {"mul": 2, "sqr": 1, "add": 2, "sub": 2}

#: Tenant saturation (inflight / capacity) at which an admitted
#: request triggers an overload demotion (never below the replay
#: floor; see tenancy.OVERLOAD_FLOOR).
DEFAULT_OVERLOAD_THRESHOLD = 0.9

#: Completed-request latencies kept for the ``stats`` percentiles
#: (a sliding window, so ``repro top`` shows recent behaviour).
LATENCY_WINDOW = 1024

#: Consecutive execution failures before a tenant's circuit opens.
DEFAULT_BREAKER_THRESHOLD = 5

#: Cool-down before an open circuit admits its half-open probe.
DEFAULT_BREAKER_RESET_S = 30.0


def _reap(task: asyncio.Task) -> None:
    """Retrieve a drained task's outcome so asyncio never logs it."""
    if not task.cancelled():
        task.exception()


def _breaker_signal(exc: BaseException):
    """Map one failed execution onto circuit-breaker evidence.

    ``False`` counts toward tripping the circuit (the backend looks
    broken: faults, simulator crashes, deadline blowouts, unexpected
    internal errors).  ``None`` is neutral (admission rejections and
    request-validity errors say nothing about backend health) — it
    releases a half-open probe without deciding it.
    """
    if isinstance(exc, (FaultError, SimulationError, DeadlineError)):
        return False
    if isinstance(exc, ReproError):
        return None
    return False


def _seed_bytes(seed) -> bytes:
    """Normalise a request seed (bytes | int | str) for key derivation."""
    if isinstance(seed, bytes):
        return seed
    if isinstance(seed, int):
        return seed.to_bytes(32, "little", signed=True)
    if isinstance(seed, str):
        return seed.encode("utf-8")
    raise ServiceError(
        f"seed must be bytes, int, or str (got {type(seed).__name__})")


class KeyExchangeService:
    """Concurrent multi-tenant CSIDH sessions over one parameter set.

    The service is **stateless** with respect to key material: private
    keys are re-derived from the request's seed via
    :meth:`PrivateKey.derive` on every call, so no secret outlives a
    request and a restarted server is immediately equivalent.
    """

    def __init__(
        self,
        params: CsidhParameters,
        tenants: Sequence[TenantConfig] | None = None,
        *,
        max_inflight: int | None = None,
        max_workers: int | None = None,
        coalesce_batch: int = DEFAULT_MAX_BATCH,
        coalesce_wait_s: float = DEFAULT_MAX_WAIT_S,
        overload_threshold: float = DEFAULT_OVERLOAD_THRESHOLD,
        breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD,
        breaker_reset_s: float = DEFAULT_BREAKER_RESET_S,
        breaker_clock=None,
    ) -> None:
        self.params = params
        configs = list(tenants) if tenants is not None \
            else default_tenant_configs(1)
        if not configs:
            raise ServiceError("service needs at least one tenant")
        names = [cfg.name for cfg in configs]
        if len(set(names)) != len(names):
            raise ServiceError(f"duplicate tenant names in {names}")
        scope_prefix = f"svc{next_service_id()}/"
        self.tenants: dict[str, Tenant] = {
            cfg.name: Tenant(cfg, params, scope_prefix=scope_prefix)
            for cfg in configs
        }
        self.admission = AdmissionController(max_inflight=max_inflight)
        breaker_kwargs = {} if breaker_clock is None \
            else {"clock": breaker_clock}
        self.breaker = CircuitBreaker(
            failure_threshold=breaker_threshold,
            reset_timeout_s=breaker_reset_s, **breaker_kwargs)
        self.overload_threshold = overload_threshold
        self._lanes: dict[str, asyncio.Queue] = {}
        for tenant in self.tenants.values():
            self.admission.configure(
                tenant.config.name, tenant.config.capacity)
            self.breaker.configure(tenant.config.name)
            queue: asyncio.Queue = asyncio.Queue()
            for lane in tenant.lanes:
                queue.put_nowait(lane)
            self._lanes[tenant.config.name] = queue
        total_lanes = sum(t.config.lanes for t in self.tenants.values())
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers or max(total_lanes, 2),
            thread_name_prefix="repro-service",
        )
        self._coalescers: dict[str, RequestCoalescer] = {
            name: RequestCoalescer(
                self._batch_executor(tenant),
                max_batch=coalesce_batch,
                max_wait_s=coalesce_wait_s,
            )
            for name, tenant in self.tenants.items()
        }
        # Request accounting for ``stats`` / ``repro top`` (event-loop
        # only, so plain dicts suffice).
        self._requests: dict[str, int] = {}
        self._errors: dict[str, int] = {}
        self._latencies: deque[float] = deque(maxlen=LATENCY_WINDOW)
        self._deadline_exceeded: dict[str, int] = {}
        self._started_monotonic = time.monotonic()
        self._closed = False
        self._draining = False

    # -- tenant / lane plumbing ----------------------------------------------

    def _tenant(self, name: str) -> Tenant:
        tenant = self.tenants.get(name)
        if tenant is None:
            raise ServiceError(f"unknown tenant {name!r}")
        return tenant

    async def _checkout(self, tenant: Tenant) -> Lane:
        return await self._lanes[tenant.config.name].get()

    def _checkin(self, tenant: Tenant, lane: Lane) -> None:
        self._lanes[tenant.config.name].put_nowait(lane)

    # -- the degradation ladder in action ------------------------------------

    @staticmethod
    def _traced_call(call, trace, engine: str, lane: Lane):
        """Run *call* on a worker thread, continuing *trace* there.

        ``run_in_executor`` does not propagate contextvars, so the
        trace context crosses the thread boundary explicitly: the
        request's span node is adopted onto this worker's span stack
        and an ``execute[engine=...]`` child records the attempt —
        demoted retries of one request appear as sibling ``execute``
        spans under the same trace.  Without a trace (telemetry off,
        or an untraced embedder call) this is exactly the old direct
        call.
        """
        if trace is None or trace.node is None:
            return call(engine, lane)
        with tracing.activate(trace):
            with telemetry.span("execute", engine=engine):
                return call(engine, lane)

    async def _run_on_ladder(self, tenant: Tenant, lane: Lane,
                             op: str, call):
        """Run blocking *call(engine, lane)* on the executor, demoting
        and retrying one rung down when the tenant's own execution
        faults.  Protocol-level errors (invalid peer key, bad request)
        propagate immediately — they are the caller's fault, not the
        engine's.
        """
        loop = asyncio.get_running_loop()
        trace = tracing.current_trace()
        while True:
            engine = tenant.engine
            detections_before, _ = lane.fault_counts()
            try:
                result = await loop.run_in_executor(
                    self._executor, self._traced_call, call, trace,
                    engine, lane)
            except (FaultError, SimulationError):
                # Detected divergence, exhausted recovery, or a
                # simulator crash: suspect the current tier's compiled
                # artifacts and retry one rung down on pristine state.
                tenant.note_result(False)
                if tenant.demote("fault"):
                    continue
                raise
            detections_after, _ = lane.fault_counts()
            clean = detections_after == detections_before
            if not clean:
                # Checked context caught and recovered a divergence:
                # the result is good, but the tier is suspect.
                tenant.demote("fault")
            tenant.note_result(clean)
            return result

    def _note_request(self, tenant: str, seconds: float,
                      ok: bool) -> None:
        """Stats-window bookkeeping for one finished request."""
        self._requests[tenant] = self._requests.get(tenant, 0) + 1
        if not ok:
            self._errors[tenant] = self._errors.get(tenant, 0) + 1
        self._latencies.append(seconds)

    def _check_accepting(self) -> None:
        if self._closed:
            raise ServiceError("service is closed")
        if self._draining:
            raise ServiceError(
                "service is draining; not accepting new requests")

    @staticmethod
    def _deadline_at(deadline_s) -> float | None:
        """Turn a wire ``deadline`` budget into a loop-clock instant.

        The budget is *seconds from server receipt*, not an absolute
        timestamp, so client/server clock skew can never expire a
        request on arrival.
        """
        if deadline_s is None:
            return None
        try:
            budget = float(deadline_s)
        except (TypeError, ValueError):
            raise ServiceError(
                f"deadline must be a number of seconds "
                f"(got {deadline_s!r})") from None
        if not budget > 0 or not math.isfinite(budget):
            raise ServiceError(
                f"deadline must be a positive finite number of "
                f"seconds (got {deadline_s!r})")
        return asyncio.get_running_loop().time() + budget

    def _deadline_error(self, tenant: str, op: str,
                        where: str) -> DeadlineError:
        self._deadline_exceeded[tenant] = (
            self._deadline_exceeded.get(tenant, 0) + 1)
        telemetry.record_deadline_exceeded(op, where)
        return DeadlineError(
            f"{op} for tenant {tenant!r} exceeded its deadline "
            f"while {where}")

    async def _execute_deadlined(self, tenant: Tenant, op: str, call,
                                 deadline_at: float | None):
        """Lane checkout + ladder, bounded by *deadline_at*.

        A deadline hit while queued for a lane cancels the wait — the
        work never starts.  A deadline hit mid-execution withholds the
        response but lets the executor-thread work **drain in the
        background** (the lane is checked in only when its thread is
        truly done, so a timed-out request can never leak a lane's
        mutable simulator state to the next request).
        """
        name = tenant.config.name
        if deadline_at is None:
            lane = await self._checkout(tenant)
            try:
                return await self._run_on_ladder(tenant, lane, op, call)
            finally:
                self._checkin(tenant, lane)
        loop = asyncio.get_running_loop()
        remaining = deadline_at - loop.time()
        if remaining <= 0:
            raise self._deadline_error(name, op, "queued")
        try:
            lane = await asyncio.wait_for(
                self._checkout(tenant), remaining)
        except asyncio.TimeoutError:
            raise self._deadline_error(
                name, op, "queued") from None

        async def run_and_checkin():
            try:
                return await self._run_on_ladder(tenant, lane, op, call)
            finally:
                self._checkin(tenant, lane)

        inner = asyncio.ensure_future(run_and_checkin())
        inner.add_done_callback(_reap)
        remaining = deadline_at - loop.time()
        try:
            return await asyncio.wait_for(
                asyncio.shield(inner), max(remaining, 0.0))
        except asyncio.TimeoutError:
            raise self._deadline_error(
                name, op, "running") from None

    async def _run_op(self, tenant_name: str, op: str, call,
                      trace_id: str | None = None,
                      deadline_s=None):
        """Breaker -> admission -> lane -> ladder -> telemetry.

        The whole pipeline runs under a per-request trace context
        (:func:`repro.telemetry.tracing.request_trace`): with telemetry
        enabled, the request's span subtree — executor attempts,
        coalescer waits, per-kernel cycles — hangs off one ``request``
        node keyed by the (possibly wire-supplied) ``trace_id``.
        """
        self._check_accepting()
        tenant = self._tenant(tenant_name)
        deadline_at = self._deadline_at(deadline_s)
        started = time.perf_counter()
        try:
            with tracing.request_trace(op, tenant_name,
                                       trace_id=trace_id):
                self.breaker.check(tenant_name)
                try:
                    with self.admission.admit(tenant_name):
                        if (self.admission.saturation(tenant_name)
                                >= self.overload_threshold):
                            tenant.demote("overload")
                        result = await self._execute_deadlined(
                            tenant, op, call, deadline_at)
                except Exception as exc:
                    # check() admitted this request (possibly as the
                    # half-open probe): exactly one record() balances it.
                    self.breaker.record(
                        tenant_name, _breaker_signal(exc))
                    raise
                else:
                    self.breaker.record(tenant_name, True)
        except Exception:
            telemetry.record_service_request(tenant_name, op, "error")
            self._note_request(
                tenant_name, time.perf_counter() - started, ok=False)
            raise
        elapsed = time.perf_counter() - started
        telemetry.record_service_request(tenant_name, op, "ok")
        telemetry.record_service_latency(op, elapsed)
        self._note_request(tenant_name, elapsed, ok=True)
        return result

    # -- protocol operations -------------------------------------------------

    async def keygen(self, tenant: str, seed, *,
                     trace_id: str | None = None,
                     deadline_s=None) -> int:
        """Derive the keypair for *seed*; return the public coefficient."""
        seed_data = _seed_bytes(seed)

        def call(engine: str, lane: Lane) -> int:
            private = PrivateKey.derive(seed_data, self.params)
            public = lane.endpoint(engine).public_key(private)
            return public.coefficient

        return await self._run_op(tenant, "keygen", call, trace_id,
                                  deadline_s)

    async def exchange(self, tenant: str, seed, peer_public: int,
                       *, validate: bool = True,
                       trace_id: str | None = None,
                       deadline_s=None) -> int:
        """Shared secret between *seed*'s key and *peer_public*."""
        seed_data = _seed_bytes(seed)
        if not isinstance(peer_public, int):
            raise ServiceError("peer public key must be an integer "
                               "curve coefficient")

        def call(engine: str, lane: Lane) -> int:
            private = PrivateKey.derive(seed_data, self.params)
            return lane.endpoint(engine).shared_secret(
                private, PublicKey(peer_public), validate=validate)

        return await self._run_op(tenant, "exchange", call, trace_id,
                                  deadline_s)

    async def verify(self, tenant: str, public: int, *,
                     trace_id: str | None = None,
                     deadline_s=None) -> bool:
        """Is *public* a valid (supersingular) public key?"""
        if not isinstance(public, int):
            raise ServiceError("public key must be an integer "
                               "curve coefficient")

        def call(engine: str, lane: Lane) -> bool:
            # Deterministic rng: the check is probabilistic per draw,
            # seeding by the key keeps verdicts reproducible.
            rng = random.Random(public)
            return is_supersingular(
                self.params, lane.context(engine),
                public % self.params.p, rng)

        return await self._run_op(tenant, "verify", call, trace_id,
                                  deadline_s)

    # -- coalesced field operations ------------------------------------------

    def _batch_executor(self, tenant: Tenant):
        """Build the coalescer backend: one lane, one ``<op>_batch``."""

        async def execute(op: str, operand_sets: list[tuple]):
            lane = await self._checkout(tenant)
            try:
                def call(engine: str, lane: Lane):
                    context = lane.context(engine)
                    method = getattr(context, f"{op}_batch")
                    if FIELD_OPS[op] == 1:
                        return method([ops[0] for ops in operand_sets])
                    return method(list(operand_sets))

                return await self._run_on_ladder(
                    tenant, lane, f"field.{op}", call)
            finally:
                self._checkin(tenant, lane)

        return execute

    async def field_op(self, tenant: str, op: str,
                       operands: Sequence[int], *,
                       trace_id: str | None = None,
                       deadline_s=None) -> int:
        """One modular field operation, batched across sessions."""
        self._check_accepting()
        arity = FIELD_OPS.get(op)
        if arity is None:
            raise ServiceError(
                f"unknown field op {op!r}; expected one of "
                f"{sorted(FIELD_OPS)}")
        operands = [int(v) for v in operands]
        if len(operands) != arity:
            raise ServiceError(
                f"field op {op!r} takes {arity} operand(s), "
                f"got {len(operands)}")
        tenant_obj = self._tenant(tenant)
        deadline_at = self._deadline_at(deadline_s)
        started = time.perf_counter()
        try:
            with tracing.request_trace("field_op", tenant,
                                       trace_id=trace_id):
                self.breaker.check(tenant)
                try:
                    with self.admission.admit(tenant):
                        if (self.admission.saturation(tenant)
                                >= self.overload_threshold):
                            tenant_obj.demote("overload")
                        result = await self._submit_deadlined(
                            tenant_obj, op, operands, deadline_at)
                except Exception as exc:
                    self.breaker.record(tenant, _breaker_signal(exc))
                    raise
                else:
                    self.breaker.record(tenant, True)
        except Exception:
            telemetry.record_service_request(tenant, "field_op", "error")
            self._note_request(
                tenant, time.perf_counter() - started, ok=False)
            raise
        elapsed = time.perf_counter() - started
        telemetry.record_service_request(tenant, "field_op", "ok")
        telemetry.record_service_latency("field_op", elapsed)
        self._note_request(tenant, elapsed, ok=True)
        return result

    async def _submit_deadlined(self, tenant_obj: Tenant, op: str,
                                operands, deadline_at: float | None):
        """Coalescer submit bounded by *deadline_at* (same drain
        semantics as :meth:`_execute_deadlined`: the batch completes
        in the background, only this request's response is withheld)."""
        name = tenant_obj.config.name
        if deadline_at is None:
            return await self._coalescers[name].submit(op, operands)
        loop = asyncio.get_running_loop()
        remaining = deadline_at - loop.time()
        if remaining <= 0:
            raise self._deadline_error(name, "field_op", "queued")
        inner = asyncio.ensure_future(
            self._coalescers[name].submit(op, operands))
        inner.add_done_callback(_reap)
        try:
            return await asyncio.wait_for(
                asyncio.shield(inner), remaining)
        except asyncio.TimeoutError:
            raise self._deadline_error(
                name, "field_op", "running") from None

    # -- introspection / lifecycle -------------------------------------------

    def stats(self) -> dict:
        """Point-in-time service snapshot (also served as op ``stats``)."""
        tenants = {}
        for name, tenant in self.tenants.items():
            detections = recoveries = 0
            for lane in tenant.lanes:
                lane_det, lane_rec = lane.fault_counts()
                detections += lane_det
                recoveries += lane_rec
            tenants[name] = {
                "engine": tenant.engine,
                "preferred_engine": tenant.config.engine,
                "hardened": tenant.config.hardened,
                "lanes": tenant.config.lanes,
                "capacity": tenant.config.capacity,
                "inflight": self.admission.inflight(name),
                "requests": self._requests.get(name, 0),
                "errors": self._errors.get(name, 0),
                "rejections": self.admission.rejected(name),
                "demotions": tenant.demotions,
                "promotions": tenant.promotions,
                "fault_detections": detections,
                "fault_recoveries": recoveries,
                "circuit": self.breaker.state(name),
                "circuit_rejections": self.breaker.rejected(name),
                "deadline_exceeded":
                    self._deadline_exceeded.get(name, 0),
            }
        coalesced = {
            name: {"batches": c.batches_flushed,
                   "items": c.items_flushed}
            for name, c in self._coalescers.items()
        }
        window = sorted(self._latencies)

        def pct(q: float) -> float:
            if not window:
                return 0.0
            rank = max(1, math.ceil(q * len(window)))
            return window[min(rank, len(window)) - 1]

        return {
            "modulus_bits": self.params.p.bit_length(),
            "uptime_s": time.monotonic() - self._started_monotonic,
            "tenants": tenants,
            "total_inflight": self.admission.total_inflight(),
            "requests_total": sum(self._requests.values()),
            "errors_total": sum(self._errors.values()),
            "rejections_total": self.admission.total_rejected(),
            "deadline_exceeded_total":
                sum(self._deadline_exceeded.values()),
            "latency_ms": {
                "p50": pct(0.50) * 1e3,
                "p95": pct(0.95) * 1e3,
                "p99": pct(0.99) * 1e3,
                "window": len(window),
            },
            "coalesced": coalesced,
        }

    def health(self) -> dict:
        """Liveness/readiness snapshot (also served as op ``health``).

        Cheaper and stabler than :meth:`stats`: meant for probes and
        the drain sequence, not dashboards.
        """
        status = ("closed" if self._closed
                  else "draining" if self._draining else "ok")
        return {
            "status": status,
            "ready": self.ready(),
            "uptime_s": time.monotonic() - self._started_monotonic,
            "inflight": self.admission.total_inflight(),
            "tenants": {
                name: {"engine": tenant.engine,
                       "circuit": self.breaker.state(name)}
                for name, tenant in self.tenants.items()
            },
        }

    def ready(self) -> bool:
        """Whether the service is accepting new requests."""
        return not self._closed and not self._draining

    def begin_drain(self) -> None:
        """Stop accepting new requests; in-flight work continues.

        The graceful-shutdown sequence (``repro serve`` on SIGTERM) is
        ``begin_drain()`` -> :meth:`wait_idle` -> :meth:`aclose`.
        """
        self._draining = True

    async def wait_idle(self, grace_s: float = 5.0) -> bool:
        """Wait up to *grace_s* for in-flight requests to finish.

        Returns ``True`` when the service went idle (and its
        coalescers flushed) within the grace window, ``False`` when
        work was still in flight at the deadline — the caller closes
        anyway, abandoning the stragglers.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + max(grace_s, 0.0)
        while self.admission.total_inflight() > 0:
            if loop.time() >= deadline:
                return False
            await asyncio.sleep(0.01)
        await self.drain()
        return True

    async def drain(self) -> None:
        """Flush coalescers and wait for their batches to finish."""
        for coalescer in self._coalescers.values():
            await coalescer.drain()

    async def aclose(self) -> None:
        """Drain, release every tenant's scoped runners, stop workers."""
        if self._closed:
            return
        self._closed = True
        await self.drain()
        for tenant in self.tenants.values():
            tenant.close()
        self._executor.shutdown(wait=True)

    async def __aenter__(self) -> "KeyExchangeService":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()
