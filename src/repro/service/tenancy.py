"""Tenants, lanes, and the graceful-degradation engine ladder.

A *tenant* is one isolated consumer of the key-exchange service: it
has its own execution-engine preference, its own hardening policy, its
own admission bounds, and — critically — its own simulator machines.
Isolation is enforced at the runner-pool level: every tenant *lane*
(one slot of intra-tenant concurrency) scopes its
:class:`~repro.field.simulated.SimulatedFieldContext` with the pool
confinement tag ``"<tenant>/<lane>"``, so no two concurrently running
sessions can ever share a live :class:`~repro.kernels.runner.KernelRunner`
machine (see :func:`repro.kernels.registry.cached_runner`).

**Degradation ladder.**  Each tenant starts on its preferred engine
(default ``jit``) and demotes one rung at a time down
``aot -> jit -> replay -> interpreter``:

* on a *fault* — a detected divergence, an exhausted recovery, or a
  simulator crash surfacing from the tenant's own runners — because a
  corrupted compiled artifact (trace, jit function, or aot thunk) is
  the prime suspect and the lower tiers re-derive everything from
  pristine kernel source (invalidation drops the on-disk aot artifact
  too, so recovery never reloads a suspect copy);
* on *overload* — a saturated admission queue — but only down to
  ``replay``: aot/jit compilation of a cold kernel is a latency spike
  exactly when the queue can least afford one (an aot tenant whose
  artifacts are warm in the disk cache skips that spike).  Overload
  never demotes below ``replay`` (the interpreter is strictly slower
  and would only deepen the backlog).

After :attr:`TenantConfig.promote_after` consecutive clean operations
the tenant is promoted one rung back toward its preference.  Hardened
tenants (``hardened=True``) keep checked contexts — sampled
cross-validation against the pure-Python reference, with bounded
recovery — on **every** rung; degradation changes the execution tier,
never the safety posture (``docs/ROBUSTNESS.md``).
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field

from repro import telemetry
from repro.csidh.parameters import CsidhParameters
from repro.csidh.protocol import Csidh
from repro.errors import ServiceError
from repro.field.simulated import SimulatedFieldContext
from repro.kernels import registry
from repro.kernels.runner import DEFAULT_CHECK_INTERVAL
from repro.rv64.machine import ENGINES

#: The demotion ladder, fastest first (mirrors Machine's tiers).
ENGINE_LADDER = ("aot", "jit", "replay", "interpreter")

#: Overload demotions stop here: dropping to the interpreter would
#: slow the tenant down ~5x and deepen the very backlog that
#: triggered the demotion.
OVERLOAD_FLOOR = "replay"


@dataclass(frozen=True)
class TenantConfig:
    """Static policy for one tenant."""

    name: str
    #: Preferred (fastest permitted) execution tier.
    engine: str = "jit"
    #: Checked contexts + supersingularity output validation on every
    #: rung (see docs/ROBUSTNESS.md).  The production posture.
    hardened: bool = False
    #: Intra-tenant concurrency: number of session lanes, each with
    #: its own scoped simulator machines.
    lanes: int = 1
    #: Requests allowed to wait beyond the running ones; admission
    #: capacity is ``lanes + max_queue``.
    max_queue: int = 16
    #: Kernel variant the tenant's sessions execute.
    variant: str = "reduced.ise"
    #: Sampling interval of hardened contexts.
    check_interval: int = DEFAULT_CHECK_INTERVAL
    #: Consecutive clean operations before one promotion rung.
    promote_after: int = 32

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ServiceError(
                f"tenant {self.name!r}: unknown engine "
                f"{self.engine!r}; expected one of {ENGINES}")
        if self.lanes < 1:
            raise ServiceError(
                f"tenant {self.name!r}: need at least one lane")
        if self.max_queue < 0:
            raise ServiceError(
                f"tenant {self.name!r}: max_queue must be >= 0")

    @property
    def capacity(self) -> int:
        """Admission bound: running lanes plus the waiting queue."""
        return self.lanes + self.max_queue


class Lane:
    """One slot of intra-tenant concurrency.

    A lane owns the per-engine :class:`SimulatedFieldContext` (and the
    :class:`Csidh` endpoint wrapping it) for its scope.  Contexts are
    built lazily per engine and cached — a demoted tenant's lanes keep
    their higher-tier contexts around for promotion.  A lane must only
    ever be driven by one worker at a time; the service guarantees
    that by checking lanes out of a queue.
    """

    def __init__(self, tenant: "Tenant", index: int) -> None:
        self.tenant = tenant
        self.index = index
        self.scope = f"{tenant.scope_prefix}{tenant.config.name}/{index}"
        self._contexts: dict[str, SimulatedFieldContext] = {}
        self._endpoints: dict[str, Csidh] = {}

    def context(self, engine: str) -> SimulatedFieldContext:
        """The lane's field context for *engine* (cached)."""
        ctx = self._contexts.get(engine)
        if ctx is None:
            cfg = self.tenant.config
            ctx = SimulatedFieldContext(
                self.tenant.params.p,
                variant=cfg.variant,
                engine=engine,
                checked=cfg.hardened,
                check_interval=cfg.check_interval,
                scope=self.scope,
            )
            self._contexts[engine] = ctx
        return ctx

    def endpoint(self, engine: str, seed: int = 0) -> Csidh:
        """A protocol endpoint on this lane's *engine* context.

        The endpoint is cached per engine; its internal rng only
        drives point sampling inside the group action (the action's
        output is the canonical curve coefficient, independent of
        those draws), so reuse across sessions cannot perturb
        results.
        """
        endpoint = self._endpoints.get(engine)
        if endpoint is None:
            endpoint = Csidh(
                self.tenant.params,
                field=self.context(engine),
                seed=seed,
                verify_output=self.tenant.config.hardened,
            )
            self._endpoints[engine] = endpoint
        return endpoint

    def fault_counts(self) -> tuple[int, int]:
        """(detections, recoveries) summed over this lane's contexts."""
        detections = sum(c.fault_detections
                         for c in self._contexts.values())
        recoveries = sum(c.fault_recoveries
                         for c in self._contexts.values())
        return detections, recoveries

    def simulated_cycles(self) -> int:
        """Total simulated cycles executed on this lane's contexts.

        The independent side of the cycle-conservation invariant:
        under tracing, the sum over every lane must equal the span
        forest's total (``run_load(trace=True)`` asserts it).
        """
        return sum(c.simulated_cycles for c in self._contexts.values())

    def close(self) -> None:
        """Release the lane's scoped runners back to nothing."""
        self._contexts.clear()
        self._endpoints.clear()
        registry.clear_runner_pool(self.scope)


class Tenant:
    """Runtime state of one tenant: lanes + the degradation ladder."""

    def __init__(self, config: TenantConfig,
                 params: CsidhParameters, *,
                 scope_prefix: str = "") -> None:
        self.config = config
        self.params = params
        #: Prepended to every lane scope so two services in one
        #: process (each with a ``tenant-0``) never share machines.
        self.scope_prefix = scope_prefix
        self.lanes = [Lane(self, i) for i in range(config.lanes)]
        self._lock = threading.Lock()
        self._rung = ENGINE_LADDER.index(config.engine)
        self._clean_streak = 0
        #: Totals surfaced in load reports and ``service stats``.
        self.demotions = 0
        self.promotions = 0

    # -- the degradation ladder ---------------------------------------------

    @property
    def engine(self) -> str:
        """The tier the tenant currently runs on."""
        return ENGINE_LADDER[self._rung]

    @property
    def preferred_rung(self) -> int:
        return ENGINE_LADDER.index(self.config.engine)

    def demote(self, reason: str) -> bool:
        """One rung down; returns whether the tenant actually moved.

        ``reason="overload"`` respects :data:`OVERLOAD_FLOOR`; fault
        reasons may go all the way to the interpreter.
        """
        with self._lock:
            engine_from = ENGINE_LADDER[self._rung]
            floor = (ENGINE_LADDER.index(OVERLOAD_FLOOR)
                     if reason == "overload"
                     else len(ENGINE_LADDER) - 1)
            if self._rung >= floor:
                return False
            self._rung += 1
            self._clean_streak = 0
            self.demotions += 1
            engine_to = ENGINE_LADDER[self._rung]
        telemetry.record_service_demotion(
            self.config.name, engine_from, engine_to, reason)
        return True

    def note_result(self, clean: bool) -> None:
        """Track op outcomes; promote after a sustained clean streak."""
        with self._lock:
            if not clean:
                self._clean_streak = 0
                return
            if self._rung <= self.preferred_rung:
                return
            self._clean_streak += 1
            if self._clean_streak < self.config.promote_after:
                return
            self._rung -= 1
            self._clean_streak = 0
            self.promotions += 1
            engine_to = ENGINE_LADDER[self._rung]
        telemetry.record_service_promotion(self.config.name, engine_to)

    def close(self) -> None:
        for lane in self.lanes:
            lane.close()


def default_tenant_configs(
    count: int,
    *,
    engine: str = "jit",
    hardened: bool = False,
    lanes: int = 2,
    max_queue: int = 16,
    variant: str = "reduced.ise",
) -> list[TenantConfig]:
    """Uniform tenant fleet ``tenant-0 .. tenant-(count-1)`` (the load
    harness and CLI default)."""
    if count < 1:
        raise ServiceError("need at least one tenant")
    return [
        TenantConfig(
            name=f"tenant-{i}", engine=engine, hardened=hardened,
            lanes=lanes, max_queue=max_queue, variant=variant,
        )
        for i in range(count)
    ]


#: Process-wide uniquifier for anonymous service scopes, so two
#: services over the same params in one process never collide.
_SERVICE_IDS = itertools.count()


def next_service_id() -> int:
    return next(_SERVICE_IDS)
