"""Admission control: bounded per-tenant queues, stateless rejection.

The controller is the service's backpressure valve.  Every request
must acquire a :class:`Ticket` before it may wait for a lane; a tenant
whose ``lanes + max_queue`` bound (or the service-wide in-flight
bound) is full gets an immediate
:class:`~repro.errors.AdmissionError` — stable error code
``"admission"`` — and leaves **no** state behind, so clients can retry
after backoff without leaking queue slots.

The bookkeeping is deliberately synchronous and lock-protected (plain
integers under one mutex) rather than asyncio-native: the service
calls it from the event loop, tests hammer it from threads and
Hypothesis drives it with random interleavings
(``tests/service/test_admission.py``), and the same object serves all
three.  Two invariants hold at every instant:

* ``0 <= inflight(tenant) <= capacity(tenant)`` — admissions beyond
  the bound are rejected, releases below zero are impossible;
* every admit is balanced by exactly one release (the ticket is a
  context manager and ``release()`` is idempotent), so a crashed
  request cannot strand capacity.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro import telemetry
from repro.errors import AdmissionError, CircuitOpenError, ServiceError


class Ticket:
    """One admitted request's claim on queue capacity."""

    __slots__ = ("_controller", "_tenant", "_released")

    def __init__(self, controller: "AdmissionController",
                 tenant: str) -> None:
        self._controller = controller
        self._tenant = tenant
        self._released = False

    @property
    def tenant(self) -> str:
        return self._tenant

    def release(self) -> None:
        """Give the capacity back (idempotent)."""
        if self._released:
            return
        self._released = True
        self._controller._release(self._tenant)

    def __enter__(self) -> "Ticket":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self.release()
        return False


class AdmissionController:
    """Bounded counters per tenant plus one service-wide bound."""

    def __init__(self, *, max_inflight: int | None = None) -> None:
        if max_inflight is not None and max_inflight < 1:
            raise ServiceError(
                f"max_inflight must be positive (got {max_inflight})")
        self._lock = threading.Lock()
        self._capacity: dict[str, int] = {}
        self._inflight: dict[str, int] = {}
        self._rejected: dict[str, int] = {}
        self._max_inflight = max_inflight
        self._total = 0

    def configure(self, tenant: str, capacity: int) -> None:
        """Set (or re-set) *tenant*'s admission capacity."""
        if capacity < 1:
            raise ServiceError(
                f"tenant {tenant!r}: capacity must be positive "
                f"(got {capacity})")
        with self._lock:
            self._capacity[tenant] = capacity
            self._inflight.setdefault(tenant, 0)

    def admit(self, tenant: str) -> Ticket:
        """Claim one slot for *tenant* or raise :class:`AdmissionError`.

        The raised error's ``code`` is the stable ``"admission"``;
        the message distinguishes the tenant bound from the
        service-wide one for humans, not for machines.
        """
        with self._lock:
            capacity = self._capacity.get(tenant)
            if capacity is None:
                raise ServiceError(f"unknown tenant {tenant!r}")
            inflight = self._inflight[tenant]
            if inflight >= capacity:
                reason = "tenant_queue_full"
            elif (self._max_inflight is not None
                    and self._total >= self._max_inflight):
                reason = "service_saturated"
            else:
                self._inflight[tenant] = inflight + 1
                self._total += 1
                ticket = Ticket(self, tenant)
                telemetry.record_service_inflight(tenant, 1)
                return ticket
            self._rejected[tenant] = self._rejected.get(tenant, 0) + 1
        telemetry.record_service_rejected(tenant, reason)
        raise AdmissionError(
            f"request for tenant {tenant!r} rejected ({reason}): "
            + (f"{inflight}/{capacity} tenant slots in use"
               if reason == "tenant_queue_full"
               else f"{self._total}/{self._max_inflight} service-wide "
                    f"slots in use"))

    def _release(self, tenant: str) -> None:
        with self._lock:
            inflight = self._inflight.get(tenant, 0)
            if inflight <= 0:  # defensive: double release is a bug
                raise ServiceError(
                    f"release without admit for tenant {tenant!r}")
            self._inflight[tenant] = inflight - 1
            self._total -= 1
        telemetry.record_service_inflight(tenant, -1)

    # -- introspection -------------------------------------------------------

    def inflight(self, tenant: str) -> int:
        with self._lock:
            return self._inflight.get(tenant, 0)

    def total_inflight(self) -> int:
        with self._lock:
            return self._total

    def rejected(self, tenant: str) -> int:
        """Total admission rejections for *tenant* (for ``stats``)."""
        with self._lock:
            return self._rejected.get(tenant, 0)

    def total_rejected(self) -> int:
        with self._lock:
            return sum(self._rejected.values())

    def capacity(self, tenant: str) -> int:
        with self._lock:
            capacity = self._capacity.get(tenant)
        if capacity is None:
            raise ServiceError(f"unknown tenant {tenant!r}")
        return capacity

    def saturation(self, tenant: str) -> float:
        """``inflight / capacity`` — the overload-demotion signal."""
        with self._lock:
            capacity = self._capacity.get(tenant)
            if not capacity:
                return 0.0
            return self._inflight.get(tenant, 0) / capacity


class CircuitBreaker:
    """Per-tenant circuit breaker layered above admission control.

    The admission controller bounds *queued* work; the breaker bounds
    *doomed* work.  A run of ``failure_threshold`` consecutive
    execution failures opens a tenant's circuit, and until
    ``reset_timeout_s`` elapses every request is rejected immediately
    with :class:`~repro.errors.CircuitOpenError` (stable code
    ``circuit_open``) — the tenant's backlog stops absorbing lanes a
    broken backend cannot serve.  After the cool-down the circuit goes
    ``half_open``: exactly one probe request is admitted, and its
    outcome closes the circuit (success) or re-opens it for another
    cool-down (failure).  Concurrent requests during the probe are
    rejected like the open state.

    Same concurrency contract as :class:`AdmissionController`: plain
    state under one mutex, callable from the event loop and from
    threads.  The clock is injectable so tests (and the deterministic
    chaos campaign) never sleep.
    """

    STATES = ("closed", "open", "half_open")

    def __init__(self, *, failure_threshold: int = 5,
                 reset_timeout_s: float = 30.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if failure_threshold < 1:
            raise ServiceError(
                "failure_threshold must be positive "
                f"(got {failure_threshold})")
        if reset_timeout_s <= 0:
            raise ServiceError(
                f"reset_timeout_s must be positive (got {reset_timeout_s})")
        self._lock = threading.Lock()
        self._clock = clock
        self._threshold = failure_threshold
        self._reset_timeout_s = reset_timeout_s
        self._state: dict[str, str] = {}
        self._failures: dict[str, int] = {}
        self._opened_at: dict[str, float] = {}
        self._probing: dict[str, bool] = {}
        self._rejected: dict[str, int] = {}

    def configure(self, tenant: str) -> None:
        """Register *tenant* with a closed circuit."""
        with self._lock:
            self._state.setdefault(tenant, "closed")
            self._failures.setdefault(tenant, 0)
        telemetry.record_circuit_state(tenant, self.state(tenant))

    def _set_state(self, tenant: str, state: str) -> None:
        # caller holds self._lock
        self._state[tenant] = state
        if state == "open":
            self._opened_at[tenant] = self._clock()
        if state != "half_open":
            self._probing[tenant] = False

    def check(self, tenant: str) -> None:
        """Admit one request or raise :class:`CircuitOpenError`.

        In the ``open`` state requests are rejected until the reset
        timeout has elapsed, at which point the circuit transitions to
        ``half_open`` and this call admits the single probe.  While the
        probe is outstanding, further requests are rejected.
        """
        transition = None
        with self._lock:
            state = self._state.get(tenant, "closed")
            if state == "open":
                elapsed = self._clock() - self._opened_at.get(tenant, 0.0)
                if elapsed >= self._reset_timeout_s:
                    self._set_state(tenant, "half_open")
                    self._probing[tenant] = True
                    transition = "half_open"
                    state = "half_open"
                else:
                    self._rejected[tenant] = (
                        self._rejected.get(tenant, 0) + 1)
                    state = "rejected"
            elif state == "half_open":
                if self._probing.get(tenant, False):
                    self._rejected[tenant] = (
                        self._rejected.get(tenant, 0) + 1)
                    state = "rejected"
                else:
                    self._probing[tenant] = True
        if transition is not None:
            telemetry.record_circuit_state(tenant, transition)
        if state == "rejected":
            telemetry.record_service_rejected(tenant, "circuit_open")
            raise CircuitOpenError(
                f"circuit for tenant {tenant!r} is open; retry after "
                f"{self._reset_timeout_s:g}s cool-down")

    def record(self, tenant: str, ok: bool | None) -> None:
        """Feed one execution outcome back into the state machine.

        ``ok=None`` is **neutral** evidence (an admission rejection or
        a caller-fault validation error says nothing about backend
        health): it releases a half-open probe so the next request can
        probe again, and leaves the failure streak untouched.
        """
        transition = None
        with self._lock:
            state = self._state.get(tenant, "closed")
            if state == "half_open":
                # the probe's outcome decides the circuit's fate
                self._probing[tenant] = False
                if ok is None:
                    pass  # next request becomes the new probe
                elif ok:
                    self._failures[tenant] = 0
                    self._set_state(tenant, "closed")
                    transition = "closed"
                else:
                    self._set_state(tenant, "open")
                    transition = "open"
            elif state == "closed":
                if ok is None:
                    pass
                elif ok:
                    self._failures[tenant] = 0
                else:
                    failures = self._failures.get(tenant, 0) + 1
                    self._failures[tenant] = failures
                    if failures >= self._threshold:
                        self._set_state(tenant, "open")
                        transition = "open"
            # outcomes arriving while open (late work from before the
            # trip) carry no information: the circuit waits its timer.
        if transition is not None:
            telemetry.record_circuit_state(tenant, transition)

    # -- introspection -------------------------------------------------------

    def state(self, tenant: str) -> str:
        with self._lock:
            return self._state.get(tenant, "closed")

    def states(self) -> dict[str, str]:
        with self._lock:
            return dict(self._state)

    def rejected(self, tenant: str) -> int:
        with self._lock:
            return self._rejected.get(tenant, 0)

    def consecutive_failures(self, tenant: str) -> int:
        with self._lock:
            return self._failures.get(tenant, 0)
