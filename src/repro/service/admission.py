"""Admission control: bounded per-tenant queues, stateless rejection.

The controller is the service's backpressure valve.  Every request
must acquire a :class:`Ticket` before it may wait for a lane; a tenant
whose ``lanes + max_queue`` bound (or the service-wide in-flight
bound) is full gets an immediate
:class:`~repro.errors.AdmissionError` — stable error code
``"admission"`` — and leaves **no** state behind, so clients can retry
after backoff without leaking queue slots.

The bookkeeping is deliberately synchronous and lock-protected (plain
integers under one mutex) rather than asyncio-native: the service
calls it from the event loop, tests hammer it from threads and
Hypothesis drives it with random interleavings
(``tests/service/test_admission.py``), and the same object serves all
three.  Two invariants hold at every instant:

* ``0 <= inflight(tenant) <= capacity(tenant)`` — admissions beyond
  the bound are rejected, releases below zero are impossible;
* every admit is balanced by exactly one release (the ticket is a
  context manager and ``release()`` is idempotent), so a crashed
  request cannot strand capacity.
"""

from __future__ import annotations

import threading
from repro import telemetry
from repro.errors import AdmissionError, ServiceError


class Ticket:
    """One admitted request's claim on queue capacity."""

    __slots__ = ("_controller", "_tenant", "_released")

    def __init__(self, controller: "AdmissionController",
                 tenant: str) -> None:
        self._controller = controller
        self._tenant = tenant
        self._released = False

    @property
    def tenant(self) -> str:
        return self._tenant

    def release(self) -> None:
        """Give the capacity back (idempotent)."""
        if self._released:
            return
        self._released = True
        self._controller._release(self._tenant)

    def __enter__(self) -> "Ticket":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self.release()
        return False


class AdmissionController:
    """Bounded counters per tenant plus one service-wide bound."""

    def __init__(self, *, max_inflight: int | None = None) -> None:
        if max_inflight is not None and max_inflight < 1:
            raise ServiceError(
                f"max_inflight must be positive (got {max_inflight})")
        self._lock = threading.Lock()
        self._capacity: dict[str, int] = {}
        self._inflight: dict[str, int] = {}
        self._rejected: dict[str, int] = {}
        self._max_inflight = max_inflight
        self._total = 0

    def configure(self, tenant: str, capacity: int) -> None:
        """Set (or re-set) *tenant*'s admission capacity."""
        if capacity < 1:
            raise ServiceError(
                f"tenant {tenant!r}: capacity must be positive "
                f"(got {capacity})")
        with self._lock:
            self._capacity[tenant] = capacity
            self._inflight.setdefault(tenant, 0)

    def admit(self, tenant: str) -> Ticket:
        """Claim one slot for *tenant* or raise :class:`AdmissionError`.

        The raised error's ``code`` is the stable ``"admission"``;
        the message distinguishes the tenant bound from the
        service-wide one for humans, not for machines.
        """
        with self._lock:
            capacity = self._capacity.get(tenant)
            if capacity is None:
                raise ServiceError(f"unknown tenant {tenant!r}")
            inflight = self._inflight[tenant]
            if inflight >= capacity:
                reason = "tenant_queue_full"
            elif (self._max_inflight is not None
                    and self._total >= self._max_inflight):
                reason = "service_saturated"
            else:
                self._inflight[tenant] = inflight + 1
                self._total += 1
                ticket = Ticket(self, tenant)
                telemetry.record_service_inflight(tenant, 1)
                return ticket
            self._rejected[tenant] = self._rejected.get(tenant, 0) + 1
        telemetry.record_service_rejected(tenant, reason)
        raise AdmissionError(
            f"request for tenant {tenant!r} rejected ({reason}): "
            + (f"{inflight}/{capacity} tenant slots in use"
               if reason == "tenant_queue_full"
               else f"{self._total}/{self._max_inflight} service-wide "
                    f"slots in use"))

    def _release(self, tenant: str) -> None:
        with self._lock:
            inflight = self._inflight.get(tenant, 0)
            if inflight <= 0:  # defensive: double release is a bug
                raise ServiceError(
                    f"release without admit for tenant {tenant!r}")
            self._inflight[tenant] = inflight - 1
            self._total -= 1
        telemetry.record_service_inflight(tenant, -1)

    # -- introspection -------------------------------------------------------

    def inflight(self, tenant: str) -> int:
        with self._lock:
            return self._inflight.get(tenant, 0)

    def total_inflight(self) -> int:
        with self._lock:
            return self._total

    def rejected(self, tenant: str) -> int:
        """Total admission rejections for *tenant* (for ``stats``)."""
        with self._lock:
            return self._rejected.get(tenant, 0)

    def total_rejected(self) -> int:
        with self._lock:
            return sum(self._rejected.values())

    def capacity(self, tenant: str) -> int:
        with self._lock:
            capacity = self._capacity.get(tenant)
        if capacity is None:
            raise ServiceError(f"unknown tenant {tenant!r}")
        return capacity

    def saturation(self, tenant: str) -> float:
        """``inflight / capacity`` — the overload-demotion signal."""
        with self._lock:
            capacity = self._capacity.get(tenant)
            if not capacity:
                return 0.0
            return self._inflight.get(tenant, 0) / capacity
