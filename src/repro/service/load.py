"""The load harness: hundreds of concurrent exchanges, then the bill.

:func:`run_load` drives the :class:`KeyExchangeService` with a fleet
of concurrent full handshakes (two keygens + both directions of the
exchange per session), checks **every** result against a sequential
pure-Python reference, and folds the outcome into a
:class:`LoadReport`: throughput, p50/p95/p99 request latency,
admission rejections, ladder demotions/promotions, fault
detections/recoveries — the numbers the CI ``service-load`` job and
``repro load`` append to the BENCH trajectory as a ``service_load``
record.

The correctness oracle is cheap and exact: the group action's output
is the canonical curve coefficient, fully determined by the key and
the starting curve (the rng only picks internal sample points), so
the expected public keys and shared secrets are computed once on the
pure-Python :class:`~repro.field.fp.FieldContext` and compared
bit-for-bit against what the concurrent simulated service returns.
``divergences == 0`` is the acceptance gate, not a statistic.
"""

from __future__ import annotations

import asyncio
import math
import random
import time
from contextlib import nullcontext
from dataclasses import dataclass, field

from repro import telemetry
from repro.csidh.parameters import CsidhParameters
from repro.csidh.protocol import Csidh, PrivateKey
from repro.errors import AdmissionError, DeadlineError, ServiceError
from repro.field.fp import FieldContext
from repro.service.server import KeyExchangeService
from repro.service.tenancy import TenantConfig, default_tenant_configs
from repro.telemetry import tracing
from repro.telemetry.metrics import TelemetryError
from repro.telemetry.spans import SpanNode

#: Backoff between admission retries; rejections are expected under
#: deliberate overload and simply retried.
RETRY_BACKOFF_S = 0.001
MAX_ADMISSION_RETRIES = 10_000

#: Default per-request deadline budget for the load harness — the
#: bound that keeps ``repro load`` from waiting forever on a wedged
#: server (satellite of the chaos/resilience work).
DEFAULT_LOAD_TIMEOUT_S = 30.0


@dataclass
class LoadReport:
    """Everything ``repro load`` prints and BENCH records."""

    params: str
    exchanges: int
    concurrency: int
    tenants: int
    engine: str
    hardened: bool
    duration_s: float
    requests: int
    divergences: int
    rejections: int
    demotions: int
    promotions: int
    fault_detections: int
    fault_recoveries: int
    #: Requests that blew their deadline budget and were retried
    #: (surfaced alongside admission rejections).
    deadline_rejections: int = 0
    latencies_s: list[float] = field(default_factory=list, repr=False)
    #: Compact trace summary (span count, top kernels by cycles) when
    #: the run was traced; lands in the BENCH record as ``trace``.
    trace_summary: dict | None = None
    #: The traced span forest (local capture root, or the forest
    #: rebuilt from a remote ``trace_export``) for chrome/flamegraph
    #: export; not part of the BENCH record.
    trace_root: SpanNode | None = field(default=None, repr=False)

    @property
    def throughput(self) -> float:
        """Completed exchanges per second."""
        if self.duration_s <= 0:
            return 0.0
        return self.exchanges / self.duration_s

    def latency_percentile(self, q: float) -> float:
        """Nearest-rank percentile of per-request latency (seconds)."""
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        rank = max(1, math.ceil(q * len(ordered)))
        return ordered[min(rank, len(ordered)) - 1]

    def to_record(self) -> dict:
        """The ``service_load`` BENCH-trajectory record."""
        record = {
            "mode": "service_load",
            "params": self.params,
            "exchanges": self.exchanges,
            "concurrency": self.concurrency,
            "tenants": self.tenants,
            "engine": self.engine,
            "hardened": self.hardened,
            "duration_s": self.duration_s,
            "throughput_per_s": self.throughput,
            "requests": self.requests,
            "latency_p50_ms": self.latency_percentile(0.50) * 1e3,
            "latency_p95_ms": self.latency_percentile(0.95) * 1e3,
            "latency_p99_ms": self.latency_percentile(0.99) * 1e3,
            "divergences": self.divergences,
            "rejections": self.rejections,
            "deadline_rejections": self.deadline_rejections,
            "demotions": self.demotions,
            "promotions": self.promotions,
            "fault_detections": self.fault_detections,
            "fault_recoveries": self.fault_recoveries,
        }
        if self.trace_summary is not None:
            record["trace"] = self.trace_summary
        return record

    def summary(self) -> str:
        return (
            f"{self.exchanges} exchanges x {self.concurrency} "
            f"concurrent over {self.tenants} tenant(s) "
            f"[{self.engine}{', hardened' if self.hardened else ''}]: "
            f"{self.throughput:.1f} ex/s in {self.duration_s:.2f}s, "
            f"latency p50/p95/p99 "
            f"{self.latency_percentile(0.50) * 1e3:.1f}/"
            f"{self.latency_percentile(0.95) * 1e3:.1f}/"
            f"{self.latency_percentile(0.99) * 1e3:.1f} ms, "
            f"{self.divergences} divergences, "
            f"{self.rejections} rejections "
            f"(+{self.deadline_rejections} deadline), "
            f"{self.demotions} demotions, "
            f"{self.fault_recoveries} recoveries"
        )


def _session_seeds(base_seed: int, index: int) -> tuple[int, int]:
    """Deterministic, collision-free (alice, bob) seeds per session."""
    origin = base_seed * 1_000_003 + 2 * index
    return origin, origin + 1


def expected_handshakes(
    params: CsidhParameters, exchanges: int, *, seed: int = 0,
) -> list[tuple[int, int, int]]:
    """Sequential pure-Python oracle: ``(pub_a, pub_b, secret)`` per
    session, computed on :class:`FieldContext` (no simulator)."""
    reference = Csidh(params, field=FieldContext(params.p))
    oracle = []
    for index in range(exchanges):
        seed_a, seed_b = _session_seeds(seed, index)
        private_a = PrivateKey.derive(
            seed_a.to_bytes(32, "little", signed=True), params)
        private_b = PrivateKey.derive(
            seed_b.to_bytes(32, "little", signed=True), params)
        pub_a = reference.public_key(private_a)
        pub_b = reference.public_key(private_b)
        secret = reference.shared_secret(private_a, pub_b,
                                         validate=False)
        oracle.append((pub_a.coefficient, pub_b.coefficient, secret))
    return oracle


async def _with_admission_retry(call, rejections: list[int],
                                deadline_rejections: list[int] | None
                                = None):
    """Run *call()* — retrying (with backoff) through deliberate
    admission rejections, which are part of normal overload behavior.
    Deadline expiries are likewise retried (the ops are idempotent)
    but counted separately, so the load report can tell backpressure
    from slowness."""
    for _ in range(MAX_ADMISSION_RETRIES):
        try:
            return await call()
        except AdmissionError:
            rejections[0] += 1
            await asyncio.sleep(RETRY_BACKOFF_S)
        except DeadlineError:
            if deadline_rejections is None:
                raise
            deadline_rejections[0] += 1
            await asyncio.sleep(RETRY_BACKOFF_S)
    raise ServiceError(
        f"request still rejected after {MAX_ADMISSION_RETRIES} "
        f"admission retries — the service is wedged, not overloaded")


async def run_load(
    params: CsidhParameters,
    *,
    exchanges: int = 100,
    concurrency: int = 16,
    tenant_configs: list[TenantConfig] | None = None,
    tenants: int = 4,
    engine: str = "jit",
    hardened: bool = False,
    lanes: int = 2,
    max_queue: int = 16,
    variant: str = "reduced.ise",
    seed: int = 0,
    service: KeyExchangeService | None = None,
    oracle: list[tuple[int, int, int]] | None = None,
    trace: bool = False,
    timeout_s: float | None = DEFAULT_LOAD_TIMEOUT_S,
) -> LoadReport:
    """Drive *exchanges* full handshakes, *concurrency* at a time.

    Pass *service* to reuse a running instance (e.g. one with faults
    armed); otherwise a fresh one is built from the tenant knobs and
    closed afterwards.  Pass *oracle* (from
    :func:`expected_handshakes`) to skip recomputing the reference.

    With ``trace=True`` the whole run records under a telemetry
    capture: every request gets a trace context, the report carries
    the span forest (:attr:`LoadReport.trace_root`) and its summary,
    and the **cycle-conservation invariant** is asserted — the
    forest's total cycles must equal the sum of every lane context's
    independently accumulated ``simulated_cycles``, exactly.
    """
    if exchanges < 1:
        raise ServiceError("need at least one exchange")
    if concurrency < 1:
        raise ServiceError("concurrency must be positive")
    if tenant_configs is None:
        tenant_configs = default_tenant_configs(
            tenants, engine=engine, hardened=hardened, lanes=lanes,
            max_queue=max_queue, variant=variant)
    owns_service = service is None
    if trace and not owns_service:
        raise ServiceError(
            "trace=True needs to own the service: a pre-built instance "
            "may already hold simulated cycles outside the capture")
    if service is None:
        service = KeyExchangeService(params, tenant_configs)
    tenant_names = list(service.tenants)
    if oracle is None:
        oracle = expected_handshakes(params, exchanges, seed=seed)
    if len(oracle) < exchanges:
        raise ServiceError(
            f"oracle covers {len(oracle)} sessions, need {exchanges}")

    gate = asyncio.Semaphore(concurrency)
    latencies: list[float] = []
    rejections = [0]
    deadline_rejections = [0]
    divergences = 0

    async def timed(coroutine_factory):
        started = time.perf_counter()
        result = await _with_admission_retry(
            coroutine_factory, rejections, deadline_rejections)
        latencies.append(time.perf_counter() - started)
        return result

    async def handshake(index: int) -> bool:
        """One full session; returns whether it matched the oracle."""
        tenant = tenant_names[index % len(tenant_names)]
        seed_a, seed_b = _session_seeds(seed, index)
        async with gate:
            pub_a = await timed(lambda: service.keygen(
                tenant, seed_a, deadline_s=timeout_s))
            pub_b = await timed(lambda: service.keygen(
                tenant, seed_b, deadline_s=timeout_s))
            secret_ab = await timed(lambda: service.exchange(
                tenant, seed_a, pub_b, deadline_s=timeout_s))
            secret_ba = await timed(lambda: service.exchange(
                tenant, seed_b, pub_a, deadline_s=timeout_s))
        want_a, want_b, want_secret = oracle[index]
        return (pub_a == want_a and pub_b == want_b
                and secret_ab == want_secret
                and secret_ba == want_secret)

    capture_cm = telemetry.capture() if trace else nullcontext(None)
    trace_root: SpanNode | None = None
    trace_summary: dict | None = None
    started = time.perf_counter()
    try:
        with capture_cm as cap:
            outcomes = await asyncio.gather(
                *(handshake(i) for i in range(exchanges)))
            await service.drain()
            duration = time.perf_counter() - started
            divergences = sum(1 for ok in outcomes if not ok)
            # Collect before aclose(): closing a lane clears its
            # contexts (and with them the fault counters).
            demotions = promotions = detections = recoveries = 0
            simulated = 0
            for tenant in service.tenants.values():
                demotions += tenant.demotions
                promotions += tenant.promotions
                for lane in tenant.lanes:
                    lane_det, lane_rec = lane.fault_counts()
                    detections += lane_det
                    recoveries += lane_rec
                    simulated += lane.simulated_cycles()
            if trace:
                trace_root = cap.root
                tree_total = trace_root.total_cycles
                if tree_total != simulated:
                    raise TelemetryError(
                        f"cycle attribution leak under tracing: span "
                        f"forest holds {tree_total} cycles, lane "
                        f"contexts ran {simulated}")
                trace_summary = tracing.summarize_root(trace_root)
    finally:
        if owns_service:
            await service.aclose()

    return LoadReport(
        params=params.name,
        exchanges=exchanges,
        concurrency=concurrency,
        tenants=len(tenant_names),
        engine=engine,
        hardened=hardened,
        duration_s=duration,
        requests=len(latencies),
        divergences=divergences,
        rejections=rejections[0],
        deadline_rejections=deadline_rejections[0],
        demotions=demotions,
        promotions=promotions,
        fault_detections=detections,
        fault_recoveries=recoveries,
        latencies_s=latencies,
        trace_summary=trace_summary,
        trace_root=trace_root,
    )


async def run_load_remote(
    params: CsidhParameters,
    host: str,
    port: int,
    *,
    exchanges: int = 100,
    concurrency: int = 16,
    seed: int = 0,
    oracle: list[tuple[int, int, int]] | None = None,
    timeout_s: float | None = DEFAULT_LOAD_TIMEOUT_S,
) -> LoadReport:
    """Drive a **live** ``repro serve`` instance over the wire.

    The same handshake fleet and pure-Python oracle as
    :func:`run_load`, but through a :class:`ServiceClient` — so the
    measured latencies include the JSON-lines round trip, and the
    trace forest comes back via the ``trace_export`` op (empty when
    the server runs without telemetry).  Ladder/fault/rejection totals
    are deltas of the server's ``stats`` around the run.
    """
    from repro.service.wire import ServiceClient

    if exchanges < 1:
        raise ServiceError("need at least one exchange")
    if concurrency < 1:
        raise ServiceError("concurrency must be positive")
    if oracle is None:
        oracle = expected_handshakes(params, exchanges, seed=seed)
    if len(oracle) < exchanges:
        raise ServiceError(
            f"oracle covers {len(oracle)} sessions, need {exchanges}")

    client = ServiceClient(timeout_s=timeout_s, rng=random.Random(seed))
    async with await client.connect(host, port) as client:
        before = await client.stats()
        if before["modulus_bits"] != params.p.bit_length():
            raise ServiceError(
                f"server runs a {before['modulus_bits']}-bit modulus, "
                f"oracle params {params.name!r} are "
                f"{params.p.bit_length()}-bit")
        tenant_names = sorted(before["tenants"])

        gate = asyncio.Semaphore(concurrency)
        latencies: list[float] = []
        rejections = [0]
        deadline_rejections = [0]

        async def timed(coroutine_factory):
            started = time.perf_counter()
            result = await _with_admission_retry(
                coroutine_factory, rejections, deadline_rejections)
            latencies.append(time.perf_counter() - started)
            return result

        async def handshake(index: int) -> bool:
            tenant = tenant_names[index % len(tenant_names)]
            seed_a, seed_b = _session_seeds(seed, index)
            async with gate:
                pub_a = await timed(
                    lambda: client.keygen(tenant, seed_a))
                pub_b = await timed(
                    lambda: client.keygen(tenant, seed_b))
                secret_ab = await timed(
                    lambda: client.exchange(tenant, seed_a, pub_b))
                secret_ba = await timed(
                    lambda: client.exchange(tenant, seed_b, pub_a))
            want_a, want_b, want_secret = oracle[index]
            return (pub_a == want_a and pub_b == want_b
                    and secret_ab == want_secret
                    and secret_ba == want_secret)

        started = time.perf_counter()
        outcomes = await asyncio.gather(
            *(handshake(i) for i in range(exchanges)))
        duration = time.perf_counter() - started
        after = await client.stats()
        document = await client.trace_export()

    def tenant_delta(key: str) -> int:
        return sum(
            after["tenants"][name][key] - before["tenants"][name][key]
            for name in tenant_names)

    trace_root = trace_summary = None
    if document.get("traces"):
        trace_root = tracing.document_to_root(document)
        trace_summary = tracing.summarize_root(trace_root)
    engines = {before["tenants"][n]["preferred_engine"]
               for n in tenant_names}
    return LoadReport(
        params=params.name,
        exchanges=exchanges,
        concurrency=concurrency,
        tenants=len(tenant_names),
        engine=engines.pop() if len(engines) == 1 else "mixed",
        hardened=any(before["tenants"][n]["hardened"]
                     for n in tenant_names),
        duration_s=duration,
        requests=len(latencies),
        divergences=sum(1 for ok in outcomes if not ok),
        rejections=rejections[0],
        deadline_rejections=deadline_rejections[0],
        demotions=tenant_delta("demotions"),
        promotions=tenant_delta("promotions"),
        fault_detections=tenant_delta("fault_detections"),
        fault_recoveries=tenant_delta("fault_recoveries"),
        latencies_s=latencies,
        trace_summary=trace_summary,
        trace_root=trace_root,
    )
