"""Request coalescing: many sessions' field ops -> one ``run_batch``.

The batched kernel API (:meth:`KernelRunner.run_batch` and the fused
jit/replay entry thunks, PR 4) amortises per-call engine resolution
and ``Machine.run`` bookkeeping — but only helps a caller who *has* a
batch.  A service has one implicitly: under concurrent load, many
tenants' sessions issue the same field operation within microseconds
of each other.  The :class:`RequestCoalescer` turns that temporal
locality into explicit batches: submissions accumulate per operation
kind, and a full window (``max_batch``) or an expired timer
(``max_wait_s``) flushes the bucket through a single batched
execution.

Correctness contract (property-tested with Hypothesis in
``tests/service/test_admission.py``): **no request is ever dropped or
duplicated** — every ``submit`` resolves exactly once, with the value
the scalar call would have produced, or with the batch's exception;
a failed flush poisons only its own bucket, later submissions flow
normally.  ``flush``/``drain`` bound the wait for stragglers.
"""

from __future__ import annotations

import asyncio
import time
from typing import Awaitable, Callable, Sequence

from repro import telemetry
from repro.errors import ServiceError
from repro.telemetry import tracing

#: ``execute(op, [operands, ...]) -> [value, ...]`` — the batched
#: backend, typically ``SimulatedFieldContext.<op>_batch`` hopped onto
#: an executor thread.
BatchExecutor = Callable[[str, list[tuple]], Awaitable[Sequence]]

#: Default flush window: enough to aggregate a concurrent burst,
#: invisible (~2ms) next to a toy group action (~10ms+).
DEFAULT_MAX_WAIT_S = 0.002
DEFAULT_MAX_BATCH = 32


class RequestCoalescer:
    """Per-operation batching window over an async batch executor.

    Single-event-loop object: ``submit`` must be called from the loop
    that created the coalescer (the service guarantees this; the
    blocking simulated execution happens inside *execute*, typically
    via ``run_in_executor``).
    """

    def __init__(
        self,
        execute: BatchExecutor,
        *,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_wait_s: float = DEFAULT_MAX_WAIT_S,
    ) -> None:
        if max_batch < 1:
            raise ServiceError(
                f"max_batch must be positive (got {max_batch})")
        if max_wait_s < 0:
            raise ServiceError(
                f"max_wait_s must be >= 0 (got {max_wait_s})")
        self._execute = execute
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        # bucket item: (operands, future, member trace, submit time)
        self._pending: dict[str, list[tuple]] = {}
        self._timers: dict[str, asyncio.TimerHandle] = {}
        self._running: set[asyncio.Task] = set()
        self.batches_flushed = 0
        self.items_flushed = 0

    async def submit(self, op: str, operands: Sequence[int]):
        """Queue one *op* request; resolves with its value.

        The caller's active trace context (if any) rides along with
        the operands, so the flushed batch can record every member
        trace_id and book each member's coalescing wait.
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        bucket = self._pending.setdefault(op, [])
        bucket.append((tuple(operands), future,
                       tracing.current_trace(), time.perf_counter()))
        if len(bucket) >= self.max_batch:
            self._flush_op(op)
        elif op not in self._timers:
            self._timers[op] = loop.call_later(
                self.max_wait_s, self._flush_op, op)
        return await future

    def _flush_op(self, op: str) -> None:
        timer = self._timers.pop(op, None)
        if timer is not None:
            timer.cancel()
        items = self._pending.pop(op, None)
        if not items:
            return
        task = asyncio.ensure_future(self._run_batch(op, items))
        self._running.add(task)
        task.add_done_callback(self._running.discard)

    async def _run_batch(self, op, items) -> None:
        now = time.perf_counter()
        batch_ctx = tracing.begin_batch(
            op, [(ctx, now - queued)
                 for _, _, ctx, queued in items])
        started = time.perf_counter()
        try:
            # The batch context travels by contextvar (per-task, so
            # concurrent flushes cannot interleave): the executor's
            # blocking call re-activates it on its worker thread and
            # the batch's kernel cycles land under the batch node —
            # once, not once per member.
            with tracing.using(batch_ctx):
                values = await self._execute(
                    op, [operands for operands, _, _, _ in items])
            if len(values) != len(items):
                raise ServiceError(
                    f"batch executor returned {len(values)} values "
                    f"for {len(items)} {op!r} requests")
        except Exception as exc:  # noqa: BLE001 — forwarded, not eaten
            tracing.finish_batch(
                batch_ctx, time.perf_counter() - started, ok=False)
            for _, future, _, _ in items:
                if not future.done():
                    future.set_exception(exc)
            return
        tracing.finish_batch(batch_ctx, time.perf_counter() - started)
        self.batches_flushed += 1
        self.items_flushed += len(items)
        telemetry.record_coalesced_batch(op, len(items))
        for (_, future, _, _), value in zip(items, values):
            if not future.done():
                future.set_result(value)

    def flush(self) -> None:
        """Flush every pending bucket now (timers cancelled)."""
        for op in list(self._pending):
            self._flush_op(op)

    async def drain(self) -> None:
        """Flush and wait until no batch execution is in flight."""
        self.flush()
        while self._running:
            await asyncio.gather(*list(self._running),
                                 return_exceptions=True)

    @property
    def pending(self) -> int:
        """Requests queued but not yet flushed."""
        return sum(len(items) for items in self._pending.values())
