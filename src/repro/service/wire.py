"""JSON-lines wire protocol: TCP server glue and the async client.

One request per line, one response per line, UTF-8 JSON:

.. code-block:: json

    {"id": 7, "op": "exchange", "tenant": "tenant-0",
     "seed": 123, "peer": 218}
    {"id": 7, "ok": true, "result": 140}

Errors come back in-band with the package's **stable error codes**
(``tests/test_errors.py``): an admission rejection is
``{"id": 7, "ok": false, "code": "admission", "error": "..."}`` — the
client re-raises it as the matching
:class:`~repro.errors.ReproError` subclass, so a caller's
``except AdmissionError`` works identically in-process and over TCP.
Responses may arrive out of order (requests run concurrently); the
``id`` is the correlator.

Ops: ``keygen`` (seed), ``exchange`` (seed, peer, validate?),
``verify`` (public), ``field_op`` (field_op, operands), ``stats``,
``ping``, ``trace_export`` (spans?, reset?, op?, tenant?, trace?).

**Request tracing.**  Every traced op (:data:`tracing.TRACED_OPS`)
carries a ``trace`` field: the client generates one if the caller did
not supply it, the server threads it through the service as the
request's trace context, and the response echoes it — so a caller can
correlate its wire latency with the server-side span subtree fetched
via ``trace_export`` (see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import asyncio
import itertools
import json

from repro import telemetry
from repro.errors import ReproError, ServiceError
from repro.service.server import KeyExchangeService
from repro.telemetry import tracing

#: Line length guard: a request is a few integers, never megabytes.
MAX_LINE_BYTES = 1 << 16

#: Client-side read limit: a ``trace_export`` response line carries
#: whole span forests, which are much bigger than any request.
MAX_RESPONSE_BYTES = 1 << 24


def _error_class(code: str) -> type[ReproError]:
    """The :class:`ReproError` subclass registered for *code* (depth-
    first over the hierarchy), so wire errors re-raise natively."""
    stack: list[type[ReproError]] = [ReproError]
    while stack:
        cls = stack.pop()
        if cls.code == code:
            return cls
        stack.extend(cls.__subclasses__())
    return ServiceError


async def _dispatch(service: KeyExchangeService, request: dict,
                    trace_id: str | None):
    op = request.get("op")
    tenant = request.get("tenant", "")
    if op == "ping":
        return "pong"
    if op == "stats":
        return service.stats()
    if op == "trace_export":
        document = tracing.snapshot_document(
            telemetry.TRACER,
            spans=bool(request.get("spans", True)),
            op=request.get("filter_op"),
            tenant=request.get("filter_tenant") or None,
            trace_id=request.get("filter_trace"))
        if request.get("reset"):
            tracing.clear_traces(telemetry.TRACER)
        return document
    if op == "keygen":
        return await service.keygen(tenant, request.get("seed", 0),
                                    trace_id=trace_id)
    if op == "exchange":
        return await service.exchange(
            tenant, request.get("seed", 0),
            request.get("peer"),
            validate=bool(request.get("validate", True)),
            trace_id=trace_id)
    if op == "verify":
        return await service.verify(tenant, request.get("public"),
                                    trace_id=trace_id)
    if op == "field_op":
        return await service.field_op(
            tenant, request.get("field_op", ""),
            request.get("operands", ()), trace_id=trace_id)
    raise ServiceError(f"unknown op {op!r}")


async def handle_connection(service: KeyExchangeService,
                            reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
    """Serve one client: each line becomes a concurrent task, so one
    slow exchange never head-of-line-blocks the connection."""
    pending: set[asyncio.Task] = set()
    write_lock = asyncio.Lock()

    async def respond(payload: dict) -> None:
        async with write_lock:  # one line at a time, interleaving-safe
            writer.write(json.dumps(payload).encode() + b"\n")
            await writer.drain()

    async def serve_one(request: dict) -> None:
        request_id = request.get("id")
        trace_id = request.get("trace")
        if trace_id is None and request.get("op") in tracing.TRACED_OPS:
            # Server-generated: every traced request has an id even
            # when the client doesn't care, so server-side traces are
            # always addressable.
            trace_id = tracing.new_trace_id()
        trace_field = {} if trace_id is None else {"trace": trace_id}
        try:
            result = await _dispatch(service, request, trace_id)
        except ReproError as exc:
            await respond({"id": request_id, "ok": False,
                           "code": exc.code, "error": str(exc),
                           **trace_field})
        else:
            await respond({"id": request_id, "ok": True,
                           "result": result, **trace_field})

    try:
        while True:
            try:
                line = await reader.readline()
            except (ConnectionError, asyncio.LimitOverrunError,
                    asyncio.CancelledError):
                break
            if not line:
                break
            line = line.strip()
            if not line:
                continue
            try:
                request = json.loads(line)
                if not isinstance(request, dict):
                    raise ValueError("request must be a JSON object")
            except ValueError as exc:
                await respond({"id": None, "ok": False,
                               "code": "service",
                               "error": f"malformed request: {exc}"})
                continue
            task = asyncio.ensure_future(serve_one(request))
            pending.add(task)
            task.add_done_callback(pending.discard)
    finally:
        for task in list(pending):
            task.cancel()
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, asyncio.CancelledError):
            # Server shutdown cancels handlers mid-close; finishing
            # normally keeps asyncio's task-exception logger quiet.
            pass


async def start_server(service: KeyExchangeService,
                       host: str = "127.0.0.1",
                       port: int = 0) -> asyncio.AbstractServer:
    """Bind a TCP server for *service*; ``port=0`` picks a free port
    (``server.sockets[0].getsockname()[1]`` reveals it)."""
    return await asyncio.start_server(
        lambda r, w: handle_connection(service, r, w),
        host, port, limit=MAX_LINE_BYTES)


class ServiceClient:
    """Async JSON-lines client with out-of-order response correlation."""

    def __init__(self) -> None:
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._ids = itertools.count(1)
        self._waiters: dict[int, asyncio.Future] = {}
        self._pump: asyncio.Task | None = None

    async def connect(self, host: str, port: int) -> "ServiceClient":
        self._reader, self._writer = await asyncio.open_connection(
            host, port, limit=MAX_RESPONSE_BYTES)
        self._pump = asyncio.ensure_future(self._read_loop())
        return self

    async def _read_loop(self) -> None:
        assert self._reader is not None
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                response = json.loads(line)
                waiter = self._waiters.pop(response.get("id"), None)
                if waiter is None or waiter.done():
                    continue
                if response.get("ok"):
                    # Resolve with the whole response: request()
                    # unwraps the result, request_traced() also wants
                    # the echoed trace id.
                    waiter.set_result(response)
                else:
                    error_cls = _error_class(
                        response.get("code", "service"))
                    waiter.set_exception(
                        error_cls(response.get("error", "request failed")))
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            for waiter in self._waiters.values():
                if not waiter.done():
                    waiter.set_exception(
                        ServiceError("connection closed"))
            self._waiters.clear()

    async def _request_response(self, op: str, fields: dict) -> dict:
        if self._writer is None:
            raise ServiceError("client is not connected")
        if op in tracing.TRACED_OPS and "trace" not in fields:
            fields = {**fields, "trace": tracing.new_trace_id()}
        request_id = next(self._ids)
        future = asyncio.get_running_loop().create_future()
        self._waiters[request_id] = future
        payload = {"id": request_id, "op": op, **fields}
        self._writer.write(json.dumps(payload).encode() + b"\n")
        await self._writer.drain()
        return await future

    async def request(self, op: str, **fields):
        response = await self._request_response(op, fields)
        return response.get("result")

    async def request_traced(self, op: str, **fields):
        """Like :meth:`request` but returns ``(result, trace_id)``.

        The trace id is the server's echo — generated client-side when
        the caller supplied none — and addresses the request's span
        subtree in a later ``trace_export``.
        """
        response = await self._request_response(op, fields)
        return response.get("result"), response.get("trace")

    # Convenience verbs mirroring KeyExchangeService's API.

    async def keygen(self, tenant: str, seed) -> int:
        return await self.request("keygen", tenant=tenant, seed=seed)

    async def exchange(self, tenant: str, seed, peer: int,
                       *, validate: bool = True) -> int:
        return await self.request("exchange", tenant=tenant, seed=seed,
                                  peer=peer, validate=validate)

    async def verify(self, tenant: str, public: int) -> bool:
        return await self.request("verify", tenant=tenant, public=public)

    async def field_op(self, tenant: str, op: str, operands) -> int:
        return await self.request("field_op", tenant=tenant,
                                  field_op=op, operands=list(operands))

    async def stats(self) -> dict:
        return await self.request("stats")

    async def ping(self) -> str:
        return await self.request("ping")

    async def trace_export(self, *, spans: bool = True,
                           reset: bool = False,
                           op: str | None = None,
                           tenant: str | None = None,
                           trace: str | None = None) -> dict:
        """Fetch the server's recorded traces (a snapshot document)."""
        fields: dict = {"spans": spans, "reset": reset}
        if op is not None:
            fields["filter_op"] = op
        if tenant is not None:
            fields["filter_tenant"] = tenant
        if trace is not None:
            fields["filter_trace"] = trace
        return await self.request("trace_export", **fields)

    async def aclose(self) -> None:
        if self._pump is not None:
            self._pump.cancel()
            try:
                await self._pump
            except asyncio.CancelledError:
                pass
            self._pump = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except ConnectionError:
                pass
            self._writer = None
        self._reader = None

    async def __aenter__(self) -> "ServiceClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()
