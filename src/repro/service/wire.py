"""JSON-lines wire protocol: TCP server glue and the async client.

One request per line, one response per line, UTF-8 JSON:

.. code-block:: json

    {"id": 7, "op": "exchange", "tenant": "tenant-0",
     "seed": 123, "peer": 218, "deadline": 30.0,
     "idem": "8c2f41d29e77b013", "ck": 2186837083}
    {"id": 7, "ok": true, "result": 140, "ck": 3412470245}

Errors come back in-band with the package's **stable error codes**
(``tests/test_errors.py``): an admission rejection is
``{"id": 7, "ok": false, "code": "admission", "error": "..."}`` — the
client re-raises it as the matching
:class:`~repro.errors.ReproError` subclass, so a caller's
``except AdmissionError`` works identically in-process and over TCP.
Responses may arrive out of order (requests run concurrently); the
``id`` is the correlator.

Ops: ``keygen`` (seed), ``exchange`` (seed, peer, validate?),
``verify`` (public), ``field_op`` (field_op, operands), ``stats``,
``ping``, ``health``, ``ready``, ``trace_export`` (spans?, reset?,
op?, tenant?, trace?).

**Resilience fields** (all optional; see ``docs/ROBUSTNESS.md``):

* ``deadline`` — a per-request budget in seconds, enforced
  server-side from receipt (clock-skew free).  Expiry answers with the
  stable code ``deadline``; late work drains in the background.
* ``idem`` — an idempotency key.  Keys are stateless (private keys
  re-derive from the request seed), so ``keygen``/``exchange``/
  ``verify``/``field_op`` are safely re-executable; the server
  additionally keeps a bounded per-connection response cache keyed on
  ``idem`` so a retry after a lost *response* returns the cached
  answer (marked ``"cached": true``) instead of recomputing.
* ``ck`` — a CRC-32 frame checksum over the frame's canonical JSON
  (sorted keys, ``ck`` excluded).  Optional on receive, always sent by
  this module: a corrupted frame is detected instead of silently
  delivering a wrong integer to a key-exchange caller.

**Request tracing.**  Every traced op (:data:`tracing.TRACED_OPS`)
carries a ``trace`` field: the client generates one if the caller did
not supply it, the server threads it through the service as the
request's trace context, and the response echoes it — so a caller can
correlate its wire latency with the server-side span subtree fetched
via ``trace_export`` (see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import asyncio
import itertools
import json
import random
import zlib
from collections import OrderedDict

from repro import telemetry
from repro.errors import (
    DeadlineError,
    ReproError,
    ServiceError,
    TransportError,
)
from repro.service.server import KeyExchangeService
from repro.telemetry import tracing

#: Line length guard: a request is a few integers, never megabytes.
MAX_LINE_BYTES = 1 << 16

#: Server read-buffer limit.  Larger than :data:`MAX_LINE_BYTES` so an
#: oversized-but-bounded request line can still be *fully consumed* and
#: answered in-band (the connection keeps serving); only lines beyond
#: this are drained blind.
WIRE_BUFFER_LIMIT = 4 * MAX_LINE_BYTES

#: Client-side read limit: a ``trace_export`` response line carries
#: whole span forests, which are much bigger than any request.
MAX_RESPONSE_BYTES = 1 << 24

#: Ops that are safe to re-execute (stateless seed-derived keys) and
#: therefore eligible for idempotency keys and automatic client retry.
IDEMPOTENT_OPS = frozenset({"keygen", "exchange", "verify", "field_op"})

#: Read-only ops the client also retries (no idempotency key needed).
READONLY_OPS = frozenset({"ping", "stats", "health", "ready"})

#: Per-connection idempotency-cache bound (LRU beyond this).
IDEM_CACHE_SIZE = 256

#: Default per-request budget for :meth:`ServiceClient.request` — the
#: client-side wait bound *and* the wire ``deadline`` sent with it.
DEFAULT_REQUEST_TIMEOUT_S = 30.0

#: Default automatic retry budget for idempotent/read-only requests.
DEFAULT_RETRIES = 2

#: Exponential-backoff base and cap for client retries (jittered).
DEFAULT_BACKOFF_S = 0.05
DEFAULT_BACKOFF_CAP_S = 1.0

_UNSET = object()


class FrameCorruptionError(TransportError, ValueError):
    """A frame parsed as JSON but failed its ``ck`` checksum.

    Both a :class:`~repro.errors.TransportError` (it is transport
    damage, and retryable) and a :class:`ValueError` (codec-level
    catches treat it like any other undecodable line).  ``frame``
    carries the decoded object so the server can still answer on the
    frame's claimed ``id``.
    """

    code = "frame_corruption"

    def __init__(self, message: str, frame: dict | None = None) -> None:
        super().__init__(message)
        self.frame = frame


def _checksum(payload: dict) -> int:
    """CRC-32 over the canonical (sorted-keys) JSON of *payload*."""
    return zlib.crc32(json.dumps(payload, sort_keys=True).encode())


def frame_encode(payload: dict) -> bytes:
    """Serialize *payload* as one checksummed wire line."""
    return json.dumps(
        {**payload, "ck": _checksum(payload)}, sort_keys=True,
    ).encode() + b"\n"


def frame_decode(line: bytes) -> dict:
    """Parse one wire line, verifying ``ck`` when present.

    Raises :class:`ValueError` on malformed JSON or a non-object
    frame, and :class:`FrameCorruptionError` (a ``ValueError``
    subclass carrying the decoded frame) on a checksum mismatch.
    """
    message = json.loads(line)
    if not isinstance(message, dict):
        raise ValueError("frame must be a JSON object")
    ck = message.pop("ck", None)
    if ck is not None and _checksum(message) != ck:
        raise FrameCorruptionError(
            "frame checksum mismatch (corrupted in transit)", message)
    return message


def _error_class(code: str) -> type[ReproError]:
    """The :class:`ReproError` subclass registered for *code* (depth-
    first over the hierarchy), so wire errors re-raise natively."""
    stack: list[type[ReproError]] = [ReproError]
    while stack:
        cls = stack.pop()
        if cls.code == code:
            return cls
        stack.extend(cls.__subclasses__())
    return ServiceError


async def _dispatch(service: KeyExchangeService, request: dict,
                    trace_id: str | None):
    op = request.get("op")
    tenant = request.get("tenant", "")
    deadline = request.get("deadline")
    if op == "ping":
        return "pong"
    if op == "stats":
        return service.stats()
    if op == "health":
        return service.health()
    if op == "ready":
        return service.ready()
    if op == "trace_export":
        document = tracing.snapshot_document(
            telemetry.TRACER,
            spans=bool(request.get("spans", True)),
            op=request.get("filter_op"),
            tenant=request.get("filter_tenant") or None,
            trace_id=request.get("filter_trace"))
        if request.get("reset"):
            tracing.clear_traces(telemetry.TRACER)
        return document
    if op == "keygen":
        return await service.keygen(tenant, request.get("seed", 0),
                                    trace_id=trace_id,
                                    deadline_s=deadline)
    if op == "exchange":
        return await service.exchange(
            tenant, request.get("seed", 0),
            request.get("peer"),
            validate=bool(request.get("validate", True)),
            trace_id=trace_id, deadline_s=deadline)
    if op == "verify":
        return await service.verify(tenant, request.get("public"),
                                    trace_id=trace_id,
                                    deadline_s=deadline)
    if op == "field_op":
        return await service.field_op(
            tenant, request.get("field_op", ""),
            request.get("operands", ()), trace_id=trace_id,
            deadline_s=deadline)
    raise ServiceError(f"unknown op {op!r}")


class _Oversized:
    """Internal marker: a request line exceeded :data:`MAX_LINE_BYTES`
    (a plain object, not an exception — the package's exception
    contract reserves those for :class:`ReproError` descendants)."""

    __slots__ = ("nbytes",)

    def __init__(self, nbytes: int) -> None:
        self.nbytes = nbytes


async def _read_request_line(reader: asyncio.StreamReader):
    """The next request line, ``None`` at EOF, or :class:`_Oversized`.

    Oversized lines are reported **after being fully consumed**, so
    the caller can answer in-band and keep serving the connection.
    Lines within the stream buffer (:data:`WIRE_BUFFER_LIMIT`) are
    consumed exactly; a hostile line beyond even that is drained blind
    up to its terminating newline (pipelined bytes in the drained
    chunks are lost — the peer is already out of contract).
    """
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        # EOF without a trailing newline: serve the partial line.
        if not exc.partial:
            return None
        line = exc.partial
    except asyncio.LimitOverrunError:
        dropped = 0
        while True:
            chunk = await reader.read(WIRE_BUFFER_LIMIT)
            if not chunk:
                break
            dropped += len(chunk)
            if b"\n" in chunk:
                break
        return _Oversized(dropped)
    if len(line) > MAX_LINE_BYTES:
        return _Oversized(len(line))
    return line


async def handle_connection(service: KeyExchangeService,
                            reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
    """Serve one client: each line becomes a concurrent task, so one
    slow exchange never head-of-line-blocks the connection."""
    pending: set[asyncio.Task] = set()
    write_lock = asyncio.Lock()
    # Per-connection idempotency cache: key -> future resolving to the
    # response body.  Futures (not bodies) so a duplicate arriving
    # while the original is still executing awaits that execution
    # instead of starting a second one.
    idem_cache: OrderedDict[str, asyncio.Future] = OrderedDict()

    async def respond(payload: dict) -> None:
        async with write_lock:  # one line at a time, interleaving-safe
            try:
                writer.write(frame_encode(payload))
                await writer.drain()
            except OSError:
                # Peer vanished mid-response; the read side is about
                # to see EOF and tear the connection down.
                pass

    async def serve_one(request: dict) -> None:
        request_id = request.get("id")
        op = request.get("op")
        trace_id = request.get("trace")
        if trace_id is None and op in tracing.TRACED_OPS:
            # Server-generated: every traced request has an id even
            # when the client doesn't care, so server-side traces are
            # always addressable.
            trace_id = tracing.new_trace_id()
        trace_field = {} if trace_id is None else {"trace": trace_id}

        idem = request.get("idem")
        slot: asyncio.Future | None = None
        if isinstance(idem, str) and idem and op in IDEMPOTENT_OPS:
            cached = idem_cache.get(idem)
            if cached is not None:
                idem_cache.move_to_end(idem)
                body = await cached
                await respond({"id": request_id, "cached": True, **body})
                return
            slot = asyncio.get_running_loop().create_future()
            idem_cache[idem] = slot
            while len(idem_cache) > IDEM_CACHE_SIZE:
                idem_cache.popitem(last=False)

        try:
            result = await _dispatch(service, request, trace_id)
        except ReproError as exc:
            ok = False
            body = {"ok": False, "code": exc.code, "error": str(exc),
                    **trace_field}
        except Exception as exc:  # noqa: BLE001 — the wire boundary
            # A non-ReproError escaping _dispatch used to kill this
            # task silently, hanging the client's waiter forever.
            ok = False
            telemetry.record_service_internal_error(str(op))
            body = {"ok": False, "code": "service",
                    "error": ("internal error: "
                              f"{type(exc).__name__}: {exc}"),
                    **trace_field}
        else:
            ok = True
            body = {"ok": True, "result": result, **trace_field}
        if slot is not None:
            slot.set_result(body)
            if not ok:
                # Errors resolve in-flight duplicates but are not
                # cached: a later retry re-executes.
                idem_cache.pop(idem, None)
        await respond({"id": request_id, **body})

    try:
        while True:
            try:
                line = await _read_request_line(reader)
            except (ConnectionError, asyncio.CancelledError):
                break
            if line is None:
                break
            if isinstance(line, _Oversized):
                await respond({
                    "id": None, "ok": False, "code": "service",
                    "error": (f"malformed request: line of "
                              f"{line.nbytes} bytes exceeds the "
                              f"{MAX_LINE_BYTES}-byte limit")})
                continue
            line = line.strip()
            if not line:
                continue
            try:
                request = frame_decode(line)
            except FrameCorruptionError as exc:
                frame = exc.frame if isinstance(exc.frame, dict) else {}
                await respond({"id": frame.get("id"), "ok": False,
                               "code": "transport",
                               "error": str(exc)})
                continue
            except ValueError as exc:
                await respond({"id": None, "ok": False,
                               "code": "service",
                               "error": f"malformed request: {exc}"})
                continue
            task = asyncio.ensure_future(serve_one(request))
            pending.add(task)
            task.add_done_callback(pending.discard)
    finally:
        for task in list(pending):
            task.cancel()
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, asyncio.CancelledError):
            # Server shutdown cancels handlers mid-close; finishing
            # normally keeps asyncio's task-exception logger quiet.
            pass


async def start_server(service: KeyExchangeService,
                       host: str = "127.0.0.1",
                       port: int = 0) -> asyncio.AbstractServer:
    """Bind a TCP server for *service*; ``port=0`` picks a free port
    (``server.sockets[0].getsockname()[1]`` reveals it)."""
    return await asyncio.start_server(
        lambda r, w: handle_connection(service, r, w),
        host, port, limit=WIRE_BUFFER_LIMIT)


class ServiceClient:
    """Async JSON-lines client with out-of-order response correlation
    and built-in resilience.

    Every request is bounded by a **timeout** (sent to the server as
    its wire ``deadline`` and enforced locally as the wait bound) and
    idempotent/read-only requests are **retried** with exponential
    backoff + jitter across transport faults, timeouts and dropped
    connections — reconnecting as needed.  Idempotency keys make the
    retries exactly-once observable: a retry after a lost response is
    answered from the server's response cache.  ``timeout=None``
    restores the old unbounded wait; ``retries=0`` disables retry.
    """

    def __init__(self, *,
                 timeout_s: float | None = DEFAULT_REQUEST_TIMEOUT_S,
                 retries: int = DEFAULT_RETRIES,
                 backoff_s: float = DEFAULT_BACKOFF_S,
                 backoff_cap_s: float = DEFAULT_BACKOFF_CAP_S,
                 rng: random.Random | None = None) -> None:
        self.timeout_s = timeout_s
        self.retries = max(int(retries), 0)
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        self._rng = rng if rng is not None else random.Random()
        self._host: str | None = None
        self._port: int | None = None
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._ids = itertools.count(1)
        self._waiters: dict[int, asyncio.Future] = {}
        self._pump: asyncio.Task | None = None
        self._conn_lock = asyncio.Lock()
        #: Observability counters (also exported via telemetry).
        self.retries_total = 0
        self.reconnects_total = 0
        self.dropped_frames_total = 0

    async def connect(self, host: str, port: int) -> "ServiceClient":
        self._host, self._port = host, port
        await self._open()
        return self

    async def _open(self) -> None:
        assert self._host is not None and self._port is not None
        self._reader, self._writer = await asyncio.open_connection(
            self._host, self._port, limit=MAX_RESPONSE_BYTES)
        self._pump = asyncio.ensure_future(self._read_loop())

    def _connected(self) -> bool:
        return (self._writer is not None
                and not self._writer.is_closing()
                and self._pump is not None
                and not self._pump.done())

    async def _ensure_connection(self) -> None:
        if self._connected():
            return
        if self._host is None:
            raise ServiceError("client is not connected")
        async with self._conn_lock:
            if self._connected():
                return
            await self._teardown()
            try:
                await self._open()
            except OSError as exc:
                raise TransportError(
                    f"reconnect to {self._host}:{self._port} failed: "
                    f"{exc}") from None
            self.reconnects_total += 1
            telemetry.record_service_reconnect()

    async def _read_loop(self) -> None:
        assert self._reader is not None
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    response = frame_decode(line)
                except ValueError:
                    # Corrupt or malformed frame: drop it.  The
                    # affected request times out and retries — a
                    # garbled line must never resolve a waiter.
                    self.dropped_frames_total += 1
                    continue
                waiter = self._waiters.pop(response.get("id"), None)
                if waiter is None or waiter.done():
                    continue
                if response.get("ok"):
                    # Resolve with the whole response: request()
                    # unwraps the result, request_traced() also wants
                    # the echoed trace id.
                    waiter.set_result(response)
                else:
                    error_cls = _error_class(
                        response.get("code", "service"))
                    waiter.set_exception(
                        error_cls(response.get("error", "request failed")))
        except (OSError, ValueError, asyncio.CancelledError):
            # Connection loss or an over-limit response line: treat
            # both as transport teardown.
            pass
        finally:
            for waiter in self._waiters.values():
                if not waiter.done():
                    waiter.set_exception(
                        TransportError("connection closed"))
            self._waiters.clear()

    async def _attempt(self, op: str, fields: dict,
                       timeout_s: float | None):
        """One wire round-trip (no retry).

        Transport faults raise :class:`TransportError`; a local wait
        timeout raises :class:`DeadlineError` — both retryable.
        """
        await self._ensure_connection()
        assert self._writer is not None
        request_id = next(self._ids)
        future = asyncio.get_running_loop().create_future()
        self._waiters[request_id] = future
        payload = {"id": request_id, "op": op, **fields}
        if timeout_s is not None and "deadline" not in payload:
            payload["deadline"] = timeout_s
        try:
            self._writer.write(frame_encode(payload))
            await self._writer.drain()
        except OSError as exc:
            self._waiters.pop(request_id, None)
            raise TransportError(f"send failed: {exc}") from None
        if timeout_s is None:
            return await future
        try:
            return await asyncio.wait_for(future, timeout_s)
        except asyncio.TimeoutError:
            self._waiters.pop(request_id, None)
            raise DeadlineError(
                f"{op} got no response within its {timeout_s:g}s "
                f"timeout") from None

    async def _request_response(self, op: str, fields: dict, *,
                                timeout=_UNSET) -> dict:
        timeout_s = self.timeout_s if timeout is _UNSET else timeout
        fields = dict(fields)
        if op in tracing.TRACED_OPS and "trace" not in fields:
            fields["trace"] = tracing.new_trace_id()
        retryable = op in IDEMPOTENT_OPS or op in READONLY_OPS
        if op in IDEMPOTENT_OPS and "idem" not in fields:
            # One key per *logical* request: every retry attempt
            # reuses it, so the server can deduplicate.
            fields["idem"] = tracing.new_trace_id()
        attempts = (self.retries if retryable else 0) + 1
        delay = self.backoff_s
        last: ReproError | None = None
        for attempt in range(attempts):
            if attempt:
                self.retries_total += 1
                telemetry.record_service_retry(op, last.code)
                await asyncio.sleep(delay * (0.5 + self._rng.random()))
                delay = min(delay * 2, self.backoff_cap_s)
            try:
                return await self._attempt(op, fields, timeout_s)
            except (TransportError, DeadlineError) as exc:
                last = exc
        assert last is not None
        raise last

    async def request(self, op: str, *, timeout=_UNSET, **fields):
        response = await self._request_response(
            op, fields, timeout=timeout)
        return response.get("result")

    async def request_traced(self, op: str, *, timeout=_UNSET,
                             **fields):
        """Like :meth:`request` but returns ``(result, trace_id)``.

        The trace id is the server's echo — generated client-side when
        the caller supplied none — and addresses the request's span
        subtree in a later ``trace_export``.
        """
        response = await self._request_response(
            op, fields, timeout=timeout)
        return response.get("result"), response.get("trace")

    # Convenience verbs mirroring KeyExchangeService's API.

    async def keygen(self, tenant: str, seed, *, timeout=_UNSET) -> int:
        return await self.request("keygen", tenant=tenant, seed=seed,
                                  timeout=timeout)

    async def exchange(self, tenant: str, seed, peer: int,
                       *, validate: bool = True,
                       timeout=_UNSET) -> int:
        return await self.request("exchange", tenant=tenant, seed=seed,
                                  peer=peer, validate=validate,
                                  timeout=timeout)

    async def verify(self, tenant: str, public: int, *,
                     timeout=_UNSET) -> bool:
        return await self.request("verify", tenant=tenant,
                                  public=public, timeout=timeout)

    async def field_op(self, tenant: str, op: str, operands, *,
                       timeout=_UNSET) -> int:
        return await self.request("field_op", tenant=tenant,
                                  field_op=op, operands=list(operands),
                                  timeout=timeout)

    async def stats(self) -> dict:
        return await self.request("stats")

    async def ping(self) -> str:
        return await self.request("ping")

    async def health(self) -> dict:
        return await self.request("health")

    async def ready(self) -> bool:
        return await self.request("ready")

    async def trace_export(self, *, spans: bool = True,
                           reset: bool = False,
                           op: str | None = None,
                           tenant: str | None = None,
                           trace: str | None = None) -> dict:
        """Fetch the server's recorded traces (a snapshot document)."""
        fields: dict = {"spans": spans, "reset": reset}
        if op is not None:
            fields["filter_op"] = op
        if tenant is not None:
            fields["filter_tenant"] = tenant
        if trace is not None:
            fields["filter_trace"] = trace
        return await self.request("trace_export", **fields)

    async def _teardown(self) -> None:
        if self._pump is not None:
            self._pump.cancel()
            try:
                await self._pump
            except asyncio.CancelledError:
                pass
            self._pump = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except OSError:
                pass
            self._writer = None
        self._reader = None

    async def aclose(self) -> None:
        await self._teardown()
        self._host = self._port = None

    async def __aenter__(self) -> "ServiceClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()
